//! FIFO queueing resources.
//!
//! A [`Resource`] models a service station (a CPU, a network link, a disk
//! arm, an NFS server daemon) with one or more servers and an implicit FIFO
//! queue. Because the simulation delivers arrival events in global time
//! order, the earliest-free-server rule implemented here is an exact FIFO
//! queue without materializing a queue data structure.

use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Identifier of a resource within a [`ResourcePool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceId(usize);

impl ResourceId {
    /// The raw pool index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What happened when a job was offered to a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceOutcome {
    /// When service began (arrival time plus queueing delay).
    pub start: SimTime,
    /// When service completes.
    pub completion: SimTime,
    /// Microseconds spent waiting in the queue.
    pub waited: u64,
}

/// Cumulative statistics of one resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceStats {
    /// Jobs served (including any still in service).
    pub jobs: u64,
    /// Total service time dispensed, in microseconds.
    pub total_service: u64,
    /// Total time jobs spent queued, in microseconds.
    pub total_wait: u64,
    /// Largest single queueing delay observed, in microseconds.
    pub max_wait: u64,
}

impl ResourceStats {
    /// Mean queueing delay per job, in microseconds.
    pub fn mean_wait(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_wait as f64 / self.jobs as f64
        }
    }

    /// Mean service time per job, in microseconds.
    pub fn mean_service(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_service as f64 / self.jobs as f64
        }
    }

    /// Fraction of `elapsed` the servers spent busy (per-server average).
    ///
    /// Work-conserving FIFO means busy time equals dispensed service time.
    pub fn utilization(&self, elapsed: SimTime, capacity: usize) -> f64 {
        let span = elapsed.micros() as f64 * capacity.max(1) as f64;
        if span <= 0.0 {
            0.0
        } else {
            (self.total_service as f64 / span).min(1.0)
        }
    }
}

/// A FIFO service station with fixed capacity.
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    /// Completion time of the job currently holding each server.
    free_at: Vec<SimTime>,
    stats: ResourceStats,
}

impl Resource {
    /// Creates a resource with `capacity` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        Self {
            name: name.into(),
            free_at: vec![SimTime::ZERO; capacity],
            stats: ResourceStats::default(),
        }
    }

    /// The resource name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of parallel servers.
    pub fn capacity(&self) -> usize {
        self.free_at.len()
    }

    /// Offers a job arriving `now` needing `service_micros` of service.
    ///
    /// The job enters the FIFO queue, waits until the earliest server frees,
    /// is served, and the outcome (start, completion, wait) is returned.
    /// Arrivals must be offered in non-decreasing time order — the discrete-
    /// event loop guarantees this naturally.
    pub fn serve(&mut self, now: SimTime, service_micros: u64) -> ServiceOutcome {
        // Earliest-free server.
        let (idx, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("capacity > 0");
        let start = now.max(free);
        let completion = start.saturating_add(service_micros);
        self.free_at[idx] = completion;
        let waited = start.saturating_since(now);
        self.stats.jobs += 1;
        self.stats.total_service += service_micros;
        self.stats.total_wait += waited;
        self.stats.max_wait = self.stats.max_wait.max(waited);
        ServiceOutcome {
            start,
            completion,
            waited,
        }
    }

    /// Earliest time at which a job arriving now could start service.
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        let free = self.free_at.iter().copied().min().expect("capacity > 0");
        now.max(free)
    }

    /// Number of servers busy at time `now`.
    pub fn busy_at(&self, now: SimTime) -> usize {
        self.free_at.iter().filter(|&&t| t > now).count()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }

    /// Resets statistics (e.g. after a warm-up period), keeping server state.
    pub fn reset_stats(&mut self) {
        self.stats = ResourceStats::default();
    }
}

/// A collection of resources addressed by [`ResourceId`].
///
/// Timing models hold ids rather than references, so one pool can be owned
/// by the simulation world while models stay `'static`.
#[derive(Debug, Clone, Default)]
pub struct ResourcePool {
    resources: Vec<Resource>,
}

impl ResourcePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a resource and returns its id.
    pub fn add(&mut self, resource: Resource) -> ResourceId {
        self.resources.push(resource);
        ResourceId(self.resources.len() - 1)
    }

    /// Shared access to a resource.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this pool.
    pub fn get(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0]
    }

    /// Exclusive access to a resource.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this pool.
    pub fn get_mut(&mut self, id: ResourceId) -> &mut Resource {
        &mut self.resources[id.0]
    }

    /// Iterates over `(id, resource)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &Resource)> {
        self.resources
            .iter()
            .enumerate()
            .map(|(i, r)| (ResourceId(i), r))
    }

    /// Number of resources in the pool.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Resets statistics on every resource.
    pub fn reset_stats(&mut self) {
        for r in &mut self.resources {
            r.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Resource::new("cpu", 0);
    }

    #[test]
    fn idle_server_starts_immediately() {
        let mut r = Resource::new("disk", 1);
        let out = r.serve(SimTime::from_micros(100), 50);
        assert_eq!(out.start, SimTime::from_micros(100));
        assert_eq!(out.completion, SimTime::from_micros(150));
        assert_eq!(out.waited, 0);
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut r = Resource::new("disk", 1);
        let a = r.serve(SimTime::from_micros(0), 100);
        let b = r.serve(SimTime::from_micros(10), 100);
        let c = r.serve(SimTime::from_micros(20), 100);
        assert_eq!(a.completion, SimTime::from_micros(100));
        assert_eq!(b.start, SimTime::from_micros(100));
        assert_eq!(b.waited, 90);
        assert_eq!(c.start, SimTime::from_micros(200));
        assert_eq!(c.waited, 180);
    }

    #[test]
    fn multi_server_parallelism() {
        let mut r = Resource::new("nfsd", 2);
        let a = r.serve(SimTime::ZERO, 100);
        let b = r.serve(SimTime::ZERO, 100);
        let c = r.serve(SimTime::ZERO, 100);
        assert_eq!(a.waited, 0);
        assert_eq!(b.waited, 0);
        assert_eq!(c.start, SimTime::from_micros(100));
        assert_eq!(r.busy_at(SimTime::from_micros(50)), 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut r = Resource::new("net", 1);
        r.serve(SimTime::ZERO, 10);
        r.serve(SimTime::ZERO, 30);
        let s = r.stats();
        assert_eq!(s.jobs, 2);
        assert_eq!(s.total_service, 40);
        assert_eq!(s.total_wait, 10);
        assert_eq!(s.max_wait, 10);
        assert!((s.mean_wait() - 5.0).abs() < 1e-12);
        assert!((s.mean_service() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_bounded() {
        let mut r = Resource::new("cpu", 1);
        r.serve(SimTime::ZERO, 500);
        let u = r.stats().utilization(SimTime::from_micros(1_000), 1);
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(r.stats().utilization(SimTime::ZERO, 1), 0.0);
    }

    #[test]
    fn reset_stats_keeps_server_state() {
        let mut r = Resource::new("cpu", 1);
        r.serve(SimTime::ZERO, 100);
        r.reset_stats();
        assert_eq!(r.stats().jobs, 0);
        // Server still busy until 100.
        let out = r.serve(SimTime::from_micros(10), 10);
        assert_eq!(out.start, SimTime::from_micros(100));
    }

    #[test]
    fn earliest_start_reflects_backlog() {
        let mut r = Resource::new("disk", 1);
        r.serve(SimTime::ZERO, 100);
        assert_eq!(
            r.earliest_start(SimTime::from_micros(10)),
            SimTime::from_micros(100)
        );
        assert_eq!(
            r.earliest_start(SimTime::from_micros(200)),
            SimTime::from_micros(200)
        );
    }

    #[test]
    fn pool_addressing() {
        let mut pool = ResourcePool::new();
        assert!(pool.is_empty());
        let cpu = pool.add(Resource::new("cpu", 1));
        let disk = pool.add(Resource::new("disk", 1));
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(cpu).name(), "cpu");
        pool.get_mut(disk).serve(SimTime::ZERO, 5);
        assert_eq!(pool.get(disk).stats().jobs, 1);
        let names: Vec<&str> = pool.iter().map(|(_, r)| r.name()).collect();
        assert_eq!(names, vec!["cpu", "disk"]);
        pool.reset_stats();
        assert_eq!(pool.get(disk).stats().jobs, 0);
    }
}
