//! The calendar-queue backend of the event [`Scheduler`](crate::Scheduler).
//!
//! A calendar queue (Brown 1988) hashes each event into a circular array of
//! time buckets — "days" of a fixed `width` — and pops by walking the
//! calendar from the current day forward. With the bucket count and width
//! tracking the event population (the ladder-queue-style `rebuild` below),
//! both `push` and `pop` are O(1) amortized, against the binary heap's
//! O(log n): at the ROADMAP's million-pending-event populations that log
//! factor is the DES hot loop's dominant cost.
//!
//! Ordering contract: events drain in exactly `(time, seq)` order — the same
//! total order as the heap backend, including FIFO tie-breaking of
//! simultaneous events — so the two backends are interchangeable oracles for
//! one another (see `tests/properties.rs` and the end-to-end byte-identity
//! tests). Two invariants make the search exact:
//!
//! * every queued event is at or after `floor`, the time of the last popped
//!   event (the scheduler clamps scheduling into the past), and
//! * equal-time events always hash to the same bucket, so FIFO ties are
//!   resolved inside one sorted bucket, never across buckets.

use crate::scheduler::Scheduled;
use std::collections::VecDeque;

/// Smallest and largest bucket counts (both powers of two). The cap bounds
/// the bucket array's memory at ~64 MiB of `VecDeque` headers while still
/// giving millions of pending events ~1 event per bucket.
const MIN_BUCKETS: usize = 4;
const MAX_BUCKETS: usize = 1 << 21;

/// Events sampled when re-estimating the bucket width.
const WIDTH_SAMPLE: usize = 64;

/// Consecutive direct-search pops tolerated before the geometry is declared
/// stale and rebuilt. Keeps a queue whose time scale drifted (e.g. after a
/// burst of far-future events) from paying O(buckets) per pop forever.
const MISS_LIMIT: u32 = 16;

/// The calendar proper. See the module documentation.
#[derive(Debug)]
pub(crate) struct CalendarQueue<E> {
    /// One `VecDeque` per day, each sorted ascending by `(at, seq)`:
    /// `front()` is the day's earliest event, and same-time FIFO appends
    /// (the common case) are O(1) `push_back`s.
    buckets: Vec<VecDeque<Scheduled<E>>>,
    /// `buckets.len() - 1`; the bucket count is always a power of two.
    mask: usize,
    /// Width of one day, µs (≥ 1).
    width: u64,
    len: usize,
    /// Time of the last popped event: a floor under every queued event.
    floor: u64,
    /// The day the search currently stands on.
    cur: usize,
    /// Exclusive upper time bound of `cur`'s current year-lap window.
    /// `u128`: the window may sweep past `u64::MAX` while scanning toward a
    /// far-future outlier.
    bucket_top: u128,
    /// Consecutive pops that fell through to a direct search.
    misses: u32,
}

impl<E> CalendarQueue<E> {
    pub(crate) fn new() -> Self {
        let mut q = Self {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: MIN_BUCKETS - 1,
            width: 1,
            len: 0,
            floor: 0,
            cur: 0,
            bucket_top: 0,
            misses: 0,
        };
        q.anchor(0);
        q
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Rewinds the floor and search position to `at`, undoing the floor
    /// advance of a pop whose event is being reinserted (deadline overshoot
    /// in `run_until`). Sound only when every queued and subsequently pushed
    /// event is at or after `at` — which the scheduler's clock guarantees.
    pub(crate) fn reanchor(&mut self, at: u64) {
        self.floor = at;
        self.anchor(at);
    }

    /// Points the search at the day containing `at`.
    fn anchor(&mut self, at: u64) {
        let day = at / self.width;
        self.cur = (day as usize) & self.mask;
        self.bucket_top = (u128::from(day) + 1) * u128::from(self.width);
    }

    fn bucket_of(&self, at: u64) -> usize {
        ((at / self.width) as usize) & self.mask
    }

    /// Inserts without checking the resize thresholds (shared by `push` and
    /// `rebuild`).
    fn insert(&mut self, ev: Scheduled<E>) {
        let idx = self.bucket_of(ev.at.micros());
        let key = (ev.at, ev.seq);
        let dq = &mut self.buckets[idx];
        // Sequence numbers grow monotonically, so an event usually sorts
        // after everything already in its bucket; only a later-day resident
        // of the same bucket forces a real insertion.
        if dq.back().is_some_and(|last| (last.at, last.seq) > key) {
            let pos = dq.partition_point(|e| (e.at, e.seq) < key);
            dq.insert(pos, ev);
        } else {
            dq.push_back(ev);
        }
        self.len += 1;
    }

    pub(crate) fn push(&mut self, ev: Scheduled<E>) {
        self.insert(ev);
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Removes and returns the earliest event by `(time, seq)`.
    pub(crate) fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.len == 0 {
            return None;
        }
        // Year lap: walk at most one full calendar year from the current
        // day. The first event found inside its day's window is the global
        // minimum: every queued event is ≥ the window start (the `floor`
        // invariant), and any event earlier than the current window's top
        // would have hashed into a day already inspected.
        let n = self.buckets.len();
        for _ in 0..n {
            if let Some(front) = self.buckets[self.cur].front() {
                if u128::from(front.at.micros()) < self.bucket_top {
                    self.misses = 0;
                    return Some(self.take_front(self.cur));
                }
            }
            self.cur = (self.cur + 1) & self.mask;
            self.bucket_top += u128::from(self.width);
        }
        // A whole year holds nothing (far-future outliers): jump straight
        // to the earliest event instead of spinning through empty years.
        let best = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.front().map(|e| ((e.at, e.seq), i)))
            .min()
            .map(|((at, _), i)| (at, i))
            .expect("len > 0 means some bucket is non-empty");
        self.anchor(best.0.micros());
        self.misses += 1;
        let ev = self.take_front(best.1);
        if self.misses >= MISS_LIMIT && self.len > 0 {
            // The geometry keeps missing its events: re-estimate the width.
            self.rebuild(self.buckets.len());
        }
        Some(ev)
    }

    fn take_front(&mut self, idx: usize) -> Scheduled<E> {
        let ev = self.buckets[idx]
            .pop_front()
            .expect("bucket checked non-empty");
        self.len -= 1;
        self.floor = ev.at.micros();
        if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.buckets.len() / 2);
        }
        ev
    }

    /// Re-sizes to `nbuckets` days, re-estimating the day width from the
    /// surviving events and re-hashing them all. O(len); the doubling/
    /// halving thresholds amortize it to O(1) per operation.
    fn rebuild(&mut self, nbuckets: usize) {
        let nbuckets = nbuckets.clamp(MIN_BUCKETS, MAX_BUCKETS);
        let mut all: Vec<Scheduled<E>> = Vec::with_capacity(self.len);
        for dq in &mut self.buckets {
            all.extend(dq.drain(..));
        }
        self.width = estimate_width(&all);
        if self.buckets.len() != nbuckets {
            self.buckets = (0..nbuckets).map(|_| VecDeque::new()).collect();
            self.mask = nbuckets - 1;
        }
        self.len = 0;
        self.misses = 0;
        self.anchor(self.floor);
        for ev in all {
            self.insert(ev);
        }
    }
}

/// Picks a day width giving ~3 events per occupied day: the 10th–90th
/// percentile span of a deterministic event sample, divided by the events it
/// covers. Robust against the two adversarial shapes the property suite
/// throws at it — all-same-timestamp bursts (zero span → minimum width) and
/// far-future outliers (trimmed percentiles ignore them).
fn estimate_width<E>(events: &[Scheduled<E>]) -> u64 {
    if events.len() < 2 {
        return 1;
    }
    let stride = (events.len() / WIDTH_SAMPLE).max(1);
    let mut sample: Vec<u64> = events
        .iter()
        .step_by(stride)
        .take(WIDTH_SAMPLE)
        .map(|e| e.at.micros())
        .collect();
    sample.sort_unstable();
    let trim = sample.len() / 10;
    let span = sample[sample.len() - 1 - trim] - sample[trim];
    if span == 0 {
        return 1;
    }
    // The trimmed span covers ~80% of the population.
    let gap = span as f64 / (0.8 * events.len() as f64);
    ((3.0 * gap).ceil() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimTime;

    fn ev(at: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            at: SimTime::from_micros(at),
            seq,
            event: seq,
        }
    }

    /// Drains the queue, asserting the exact (time, seq) total order.
    fn drain_sorted(q: &mut CalendarQueue<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.at.micros(), e.seq));
        }
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(out, sorted, "calendar queue broke (time, seq) order");
        out
    }

    #[test]
    fn drains_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        for (i, at) in [30u64, 10, 20, 10, 0, 30].iter().enumerate() {
            q.push(ev(*at, i as u64));
        }
        assert_eq!(q.len(), 6);
        let order = drain_sorted(&mut q);
        assert_eq!(
            order,
            vec![(0, 4), (10, 1), (10, 3), (20, 2), (30, 0), (30, 5)]
        );
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn same_timestamp_burst_stays_fifo_through_resizes() {
        // 10k simultaneous events force several doublings with a zero-span
        // width estimate; FIFO order must survive every rebuild.
        let mut q = CalendarQueue::new();
        for seq in 0..10_000u64 {
            q.push(ev(777, seq));
        }
        let order = drain_sorted(&mut q);
        assert_eq!(order.len(), 10_000);
        assert!(order
            .iter()
            .enumerate()
            .all(|(i, &(at, seq))| at == 777 && seq == i as u64));
    }

    #[test]
    fn far_future_outlier_does_not_stall_the_lap() {
        let mut q = CalendarQueue::new();
        q.push(ev(u64::MAX - 3, 0)); // ~584k years out
        for seq in 1..100u64 {
            q.push(ev(seq, seq));
        }
        let order = drain_sorted(&mut q);
        assert_eq!(order.first(), Some(&(1, 1)));
        assert_eq!(order.last(), Some(&(u64::MAX - 3, 0)));
    }

    #[test]
    fn grows_and_shrinks_around_the_population() {
        let mut q = CalendarQueue::new();
        for seq in 0..4_096u64 {
            q.push(ev(seq * 17, seq));
        }
        assert!(q.buckets.len() >= 1_024, "queue should have grown");
        for _ in 0..4_090 {
            q.pop();
        }
        assert!(q.buckets.len() <= 16, "queue should have shrunk");
        assert_eq!(drain_sorted(&mut q).len(), 6);
    }

    #[test]
    fn interleaved_push_pop_respects_floor() {
        // Pushes at exactly the floor time (the scheduler's clamp case) must
        // still drain before later events.
        let mut q = CalendarQueue::new();
        q.push(ev(50, 0));
        assert_eq!(q.pop().unwrap().seq, 0);
        q.push(ev(50, 1)); // "now"
        q.push(ev(51, 2));
        q.push(ev(50, 3)); // same instant, later seq
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 3);
        assert_eq!(q.pop().unwrap().seq, 2);
    }

    #[test]
    fn repeated_sparse_hold_recalibrates() {
        // A standing population of 2 events light-years apart direct-searches
        // until MISS_LIMIT trips the rebuild; the queue must stay correct
        // throughout.
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut t = 0u64;
        q.push(ev(t + 1, seq));
        q.push(ev(t + 1_000_000_000, seq + 1));
        seq += 2;
        for _ in 0..100 {
            let e = q.pop().unwrap();
            assert!(e.at.micros() >= t, "time ran backwards");
            t = e.at.micros();
            q.push(ev(t + 1_000_000_000, seq));
            seq += 1;
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn width_estimate_handles_edge_shapes() {
        let burst: Vec<Scheduled<u64>> = (0..100).map(|s| ev(5, s)).collect();
        assert_eq!(estimate_width(&burst), 1);
        assert_eq!(estimate_width(&burst[..1]), 1);
        let spread: Vec<Scheduled<u64>> = (0..100).map(|s| ev(s * 1_000, s)).collect();
        let w = estimate_width(&spread);
        assert!(
            (1_000..=10_000).contains(&w),
            "width {w} off the ~3-per-day target"
        );
        // One outlier must not blow up the width.
        let mut with_outlier = spread;
        with_outlier.push(ev(u64::MAX / 2, 100));
        assert!(estimate_width(&with_outlier) < 100_000);
    }
}
