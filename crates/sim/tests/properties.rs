//! Property-based tests of the simulation kernel's ordering guarantees.

use proptest::prelude::*;
use uswg_sim::{Resource, Scheduler, SimTime, Simulation, World};

/// Records (event id, fire time) pairs.
struct Recorder {
    fired: Vec<(u64, SimTime)>,
}

impl World for Recorder {
    type Event = u64;
    fn handle(&mut self, ev: u64, sched: &mut Scheduler<u64>) {
        self.fired.push((ev, sched.now()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Events fire in non-decreasing time order no matter the insertion
    /// order, and equal-time events fire in insertion order.
    #[test]
    fn time_order_is_total(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        for (i, &d) in delays.iter().enumerate() {
            sim.schedule(d, i as u64);
        }
        let n = sim.run();
        prop_assert_eq!(n as usize, delays.len());
        let fired = &sim.world().fired;
        for w in fired.windows(2) {
            prop_assert!(w[1].1 >= w[0].1, "time went backwards");
            if w[1].1 == w[0].1 {
                prop_assert!(w[1].0 > w[0].0, "FIFO violated for simultaneous events");
            }
        }
        // Every event fired exactly at its scheduled time.
        for &(id, at) in fired {
            prop_assert_eq!(at.micros(), delays[id as usize]);
        }
    }

    /// A FIFO resource conserves work: completions are spaced by at least
    /// the service times, and total busy time equals total service.
    #[test]
    fn resource_conserves_work(jobs in prop::collection::vec((0u64..1_000, 1u64..500), 1..60)) {
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(at, _)| at);
        let mut r = Resource::new("srv", 1);
        let mut last_completion = SimTime::ZERO;
        for &(at, service) in &sorted {
            let out = r.serve(SimTime::from_micros(at), service);
            // Completions are ordered (FIFO) and never overlap.
            prop_assert!(out.completion >= last_completion);
            prop_assert!(out.start.micros() >= at);
            prop_assert_eq!(out.completion - out.start, service);
            last_completion = out.completion;
        }
        let total_service: u64 = sorted.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(r.stats().total_service, total_service);
        prop_assert_eq!(r.stats().jobs, sorted.len() as u64);
        // Makespan is at least the total work (single server).
        prop_assert!(last_completion.micros() >= total_service.min(last_completion.micros()));
    }

    /// Multi-server resources never give a worse completion than a single
    /// server for the same arrival sequence.
    #[test]
    fn more_servers_never_hurt(jobs in prop::collection::vec((0u64..500, 1u64..300), 1..40)) {
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(at, _)| at);
        let run = |capacity: usize| {
            let mut r = Resource::new("srv", capacity);
            let mut makespan = SimTime::ZERO;
            for &(at, service) in &sorted {
                let out = r.serve(SimTime::from_micros(at), service);
                makespan = makespan.max(out.completion);
            }
            makespan
        };
        prop_assert!(run(2) <= run(1));
        prop_assert!(run(4) <= run(2));
    }
}
