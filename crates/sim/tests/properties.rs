//! Property-based tests of the simulation kernel's ordering guarantees.

use proptest::prelude::*;
use uswg_sim::{Resource, Scheduler, SchedulerBackend, SimTime, Simulation, World};

/// Records (event id, fire time) pairs.
struct Recorder {
    fired: Vec<(u64, SimTime)>,
}

impl World for Recorder {
    type Event = u64;
    fn handle(&mut self, ev: u64, sched: &mut Scheduler<u64>) {
        self.fired.push((ev, sched.now()));
    }
}

/// One step of a random scheduler workout: either schedule a batch of
/// events or drain a few.
#[derive(Debug, Clone)]
enum QueueOp {
    /// Schedule one event this many µs after the current time.
    Schedule(u64),
    /// Pop (run) up to this many pending events.
    Drain(u64),
    /// Run until `now + delta`, exercising the pop-then-push-back path on
    /// the event just beyond the deadline.
    RunUntil(u64),
}

/// Delays spanning the calendar queue's adversarial shapes: same-instant
/// bursts (0), dense clusters, mid-range spread, and far-future outliers
/// that park an event many bucket-years out.
fn delay_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        0u64..8,
        0u64..10_000,
        1_000_000u64..1_000_050_000,
        Just(u64::MAX / 3),
        Just(u64::MAX - 1),
    ]
}

fn op_strategy() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        delay_strategy().prop_map(QueueOp::Schedule),
        (1u64..20).prop_map(QueueOp::Drain),
        (0u64..20_000).prop_map(QueueOp::RunUntil),
    ]
}

/// Applies one schedule/pop interleaving to a fresh simulation on `backend`
/// and returns the full `(event id, fire time)` drain sequence.
fn interleave(backend: SchedulerBackend, ops: &[QueueOp]) -> Vec<(u64, SimTime)> {
    let mut sim = Simulation::with_backend(Recorder { fired: vec![] }, backend, 0);
    let mut id = 0u64;
    for op in ops {
        match *op {
            QueueOp::Schedule(delay) => {
                sim.schedule(delay, id);
                id += 1;
            }
            QueueOp::Drain(count) => {
                sim.run_steps(count);
            }
            QueueOp::RunUntil(delta) => {
                sim.run_until(sim.now().saturating_add(delta));
            }
        }
    }
    sim.run();
    sim.into_world().fired
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole oracle: any random schedule/pop interleaving — including
    /// bucket-rotation, resize, all-same-timestamp and far-future-outlier
    /// shapes — drains in identical `(time, seq)` order on the calendar and
    /// heap backends.
    #[test]
    fn backends_drain_identically(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let heap = interleave(SchedulerBackend::Heap, &ops);
        let calendar = interleave(SchedulerBackend::Calendar, &ops);
        prop_assert_eq!(heap.len(), calendar.len());
        prop_assert_eq!(heap, calendar);
    }

    /// Heavy same-instant bursts punctuated by far-future jumps: the
    /// calendar's zero-width-span resizes and direct-search laps must not
    /// disturb FIFO order.
    #[test]
    fn calendar_burst_and_outlier_storm_matches_heap(
        bursts in prop::collection::vec((0u64..4, 1usize..60), 1..20),
        outlier in 1_000_000_000u64..u64::MAX / 2,
    ) {
        let mut ops = Vec::new();
        for &(delay, burst) in &bursts {
            for _ in 0..burst {
                ops.push(QueueOp::Schedule(delay));
            }
            ops.push(QueueOp::Schedule(outlier));
            ops.push(QueueOp::Drain(burst as u64 / 2 + 1));
        }
        let heap = interleave(SchedulerBackend::Heap, &ops);
        let calendar = interleave(SchedulerBackend::Calendar, &ops);
        prop_assert_eq!(heap, calendar);
    }

    /// Events fire in non-decreasing time order no matter the insertion
    /// order, and equal-time events fire in insertion order.
    #[test]
    fn time_order_is_total(delays in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        for (i, &d) in delays.iter().enumerate() {
            sim.schedule(d, i as u64);
        }
        let n = sim.run();
        prop_assert_eq!(n as usize, delays.len());
        let fired = &sim.world().fired;
        for w in fired.windows(2) {
            prop_assert!(w[1].1 >= w[0].1, "time went backwards");
            if w[1].1 == w[0].1 {
                prop_assert!(w[1].0 > w[0].0, "FIFO violated for simultaneous events");
            }
        }
        // Every event fired exactly at its scheduled time.
        for &(id, at) in fired {
            prop_assert_eq!(at.micros(), delays[id as usize]);
        }
    }

    /// A FIFO resource conserves work: completions are spaced by at least
    /// the service times, and total busy time equals total service.
    #[test]
    fn resource_conserves_work(jobs in prop::collection::vec((0u64..1_000, 1u64..500), 1..60)) {
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(at, _)| at);
        let mut r = Resource::new("srv", 1);
        let mut last_completion = SimTime::ZERO;
        for &(at, service) in &sorted {
            let out = r.serve(SimTime::from_micros(at), service);
            // Completions are ordered (FIFO) and never overlap.
            prop_assert!(out.completion >= last_completion);
            prop_assert!(out.start.micros() >= at);
            prop_assert_eq!(out.completion - out.start, service);
            last_completion = out.completion;
        }
        let total_service: u64 = sorted.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(r.stats().total_service, total_service);
        prop_assert_eq!(r.stats().jobs, sorted.len() as u64);
        // Makespan is at least the total work (single server).
        prop_assert!(last_completion.micros() >= total_service.min(last_completion.micros()));
    }

    /// Multi-server resources never give a worse completion than a single
    /// server for the same arrival sequence.
    #[test]
    fn more_servers_never_hurt(jobs in prop::collection::vec((0u64..500, 1u64..300), 1..40)) {
        let mut sorted = jobs.clone();
        sorted.sort_by_key(|&(at, _)| at);
        let run = |capacity: usize| {
            let mut r = Resource::new("srv", capacity);
            let mut makespan = SimTime::ZERO;
            for &(at, service) in &sorted {
                let out = r.serve(SimTime::from_micros(at), service);
                makespan = makespan.max(out.completion);
            }
            makespan
        };
        prop_assert!(run(2) <= run(1));
        prop_assert!(run(4) <= run(2));
    }
}
