//! Validation of the simulation kernel against analytic queueing theory.
//!
//! If the kernel's FIFO resources do not reproduce M/M/1 and M/D/1 waiting
//! times, none of the downstream NFS response-time experiments can be
//! trusted, so these tests pin the kernel to closed-form results.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uswg_distr::{Distribution, Exponential};
use uswg_sim::{Resource, Scheduler, SimTime, Simulation, World};

/// A single-queue world: Poisson arrivals into one FIFO resource.
struct Queue {
    rng: StdRng,
    interarrival: Exponential,
    service: Option<Exponential>,
    fixed_service: u64,
    resource: Resource,
    arrivals_left: u64,
    completed: u64,
    total_response: u64,
}

#[derive(Debug)]
enum Ev {
    Arrive,
    Complete { arrived: SimTime },
}

impl World for Queue {
    type Event = Ev;

    fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
        match event {
            Ev::Arrive => {
                let now = sched.now();
                let service = match &self.service {
                    Some(d) => d.sample(&mut self.rng).round().max(1.0) as u64,
                    None => self.fixed_service,
                };
                let outcome = self.resource.serve(now, service);
                sched.schedule_at(outcome.completion, Ev::Complete { arrived: now });
                if self.arrivals_left > 0 {
                    self.arrivals_left -= 1;
                    let gap = self.interarrival.sample(&mut self.rng).round().max(1.0) as u64;
                    sched.schedule(gap, Ev::Arrive);
                }
            }
            Ev::Complete { arrived } => {
                self.completed += 1;
                self.total_response += sched.now() - arrived;
            }
        }
    }
}

fn run_queue(
    interarrival_mean: f64,
    service: Option<f64>,
    fixed_service: u64,
    jobs: u64,
    seed: u64,
) -> (f64, f64) {
    let world = Queue {
        rng: StdRng::seed_from_u64(seed),
        interarrival: Exponential::new(interarrival_mean).unwrap(),
        service: service.map(|m| Exponential::new(m).unwrap()),
        fixed_service,
        resource: Resource::new("server", 1),
        arrivals_left: jobs - 1,
        completed: 0,
        total_response: 0,
    };
    let mut sim = Simulation::new(world);
    sim.schedule(0, Ev::Arrive);
    sim.run();
    let w = sim.world();
    assert_eq!(w.completed, jobs);
    let mean_response = w.total_response as f64 / jobs as f64;
    let mean_wait = w.resource.stats().mean_wait();
    (mean_response, mean_wait)
}

#[test]
fn mm1_mean_wait_matches_theory() {
    // M/M/1 with ρ = 0.5: Wq = ρ/(μ(1−ρ)) = service_mean · ρ/(1−ρ) = 100 µs.
    let (_resp, wait) = run_queue(200.0, Some(100.0), 0, 400_000, 1);
    let expected = 100.0;
    assert!(
        (wait - expected).abs() / expected < 0.08,
        "Wq = {wait}, expected ≈ {expected}"
    );
}

#[test]
fn mm1_high_load_wait_explodes() {
    // ρ = 0.9: Wq = 9 × service mean.
    let (_resp, wait) = run_queue(111.0, Some(100.0), 0, 400_000, 2);
    // λ = 1/111, ρ = 100/111; Wq = service · ρ/(1−ρ) = 100 · (100/11) / ... ≈ 909
    let rho: f64 = 100.0 / 111.0;
    let expected = 100.0 * rho / (1.0 - rho);
    assert!(
        (wait - expected).abs() / expected < 0.25,
        "Wq = {wait}, expected ≈ {expected}"
    );
}

#[test]
fn md1_wait_is_half_of_mm1() {
    // Pollaczek–Khinchine: deterministic service halves the queueing delay.
    let (_r1, wait_md1) = run_queue(200.0, None, 100, 400_000, 3);
    let expected = 50.0; // Wq(M/D/1) = ρ·s/(2(1−ρ)) = 0.5·100/(2·0.5)
    assert!(
        (wait_md1 - expected).abs() / expected < 0.10,
        "Wq = {wait_md1}, expected ≈ {expected}"
    );
}

#[test]
fn response_time_is_wait_plus_service() {
    let (resp, wait) = run_queue(200.0, Some(100.0), 0, 200_000, 4);
    assert!(
        (resp - (wait + 100.0)).abs() < 5.0,
        "response {resp} vs wait {wait} + 100"
    );
}

#[test]
fn empty_system_has_no_wait() {
    // Arrivals far apart: never queue.
    let (resp, wait) = run_queue(1_000_000.0, None, 100, 1_000, 5);
    assert_eq!(wait, 0.0);
    assert!((resp - 100.0).abs() < 1e-9);
}

#[test]
fn two_servers_halve_utilization_effects() {
    // Same offered load on capacity 2 should wait far less than capacity 1.
    struct Fixed {
        resource: Resource,
    }
    impl World for Fixed {
        type Event = u64;
        fn handle(&mut self, service: u64, sched: &mut Scheduler<u64>) {
            self.resource.serve(sched.now(), service);
        }
    }
    let mut single = Simulation::new(Fixed {
        resource: Resource::new("s", 1),
    });
    let mut double = Simulation::new(Fixed {
        resource: Resource::new("d", 2),
    });
    for sim in [&mut single, &mut double] {
        for i in 0..1_000u64 {
            sim.schedule(i * 60, 100); // arrivals every 60 µs, service 100 µs
        }
        sim.run();
    }
    let w1 = single.world().resource.stats().mean_wait();
    let w2 = double.world().resource.stats().mean_wait();
    assert!(w1 > 1_000.0, "single-server backlog should grow, got {w1}");
    assert!(w2 < 10.0, "two servers absorb the load, got {w2}");
}
