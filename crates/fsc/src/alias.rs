//! Walker/Vose alias tables for O(1) categorical draws.
//!
//! The catalog's file-selection path draws one candidate per planned file
//! reference — the innermost random choice of session planning. An alias
//! table answers any weighted categorical draw with one random number and
//! one comparison, replacing the O(n) cumulative linear scan that weighted
//! selection would otherwise need (the same step change guide tables gave
//! the continuous distributions in `uswg-distr`).
//!
//! Determinism contract: [`AliasTable::draw`] consumes exactly **one**
//! `next_u64` per draw, and a table built by [`AliasTable::uniform`] picks
//! exactly the same index as the catalog's historical `u % n` pick from the
//! same PRNG stream (property-tested in `tests/alias_equivalence.rs`), so
//! routing [`FileCatalog`](crate::FileCatalog) picks through alias tables
//! changes no seeded workload by a single byte.

use crate::FscError;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Scales the top 53 bits of a `u64` into `[0, 1)`.
const U53_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// An O(1) sampler over a fixed finite distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AliasTable {
    /// Acceptance probability of each column, in `[0, 1]`.
    prob: Vec<f64>,
    /// Donor column used when a draw rejects its own column.
    alias: Vec<u32>,
}

/// SplitMix64 finalizer: decorrelates the acceptance fraction from the
/// column index, which both come from the same single `next_u64`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl AliasTable {
    /// Builds a table over `weights` (non-negative, not all zero) by Vose's
    /// stable O(n) construction.
    ///
    /// # Errors
    ///
    /// Returns [`FscError::BadWeights`] for an empty list, a non-finite or
    /// negative weight, or an all-zero sum.
    pub fn new(weights: &[f64]) -> Result<Self, FscError> {
        let n = weights.len();
        if n == 0 || n > u32::MAX as usize {
            return Err(FscError::BadWeights {
                reason: "need between 1 and 2^32 weights",
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(FscError::BadWeights {
                reason: "weights must be finite and non-negative",
            });
        }
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err(FscError::BadWeights {
                reason: "weights must not all be zero",
            });
        }
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / sum).collect();
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(&l)) = (small.pop(), large.last()) {
            prob[s] = scaled[s];
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers on either worklist are within rounding of 1.
        for i in small {
            prob[i] = 1.0;
        }
        Ok(Self { prob, alias })
    }

    /// The uniform table over `n` categories. Skips floating-point entirely:
    /// every acceptance probability is exactly 1, so [`AliasTable::draw`]
    /// degenerates to `u % n` — bit-identical to a plain modulo pick.
    ///
    /// # Errors
    ///
    /// Returns [`FscError::BadWeights`] when `n` is zero or over `2^32`.
    pub fn uniform(n: usize) -> Result<Self, FscError> {
        if n == 0 || n > u32::MAX as usize {
            return Err(FscError::BadWeights {
                reason: "need between 1 and 2^32 weights",
            });
        }
        Ok(Self {
            prob: vec![1.0; n],
            alias: (0..n as u32).collect(),
        })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws a category index, consuming exactly one `next_u64`.
    #[inline]
    pub fn draw(&self, rng: &mut dyn RngCore) -> usize {
        let u = rng.next_u64();
        let col = (u % self.prob.len() as u64) as usize;
        let p = self.prob[col];
        // Uniform fast path (and the bit-identity guarantee): a certain
        // column never needs the acceptance fraction.
        if p >= 1.0 {
            return col;
        }
        let frac = (splitmix64(u) >> 11) as f64 * U53_SCALE;
        if frac < p {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

/// The O(n) reference draw: one uniform fraction walked through the
/// cumulative weights. This is the distribution an alias table must
/// reproduce — the chi-square and equivalence tests compare against it.
/// Consumes exactly one `next_u64`, like [`AliasTable::draw`].
///
/// # Panics
///
/// Panics on an empty weight list.
pub fn linear_scan_draw(weights: &[f64], rng: &mut dyn RngCore) -> usize {
    assert!(!weights.is_empty(), "cannot draw from zero categories");
    let sum: f64 = weights.iter().sum();
    let target = (rng.next_u64() >> 11) as f64 * U53_SCALE * sum;
    let mut acc = 0.0;
    for (i, w) in weights.iter().enumerate() {
        acc += w;
        if target < acc {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_weights() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_err());
        assert!(AliasTable::uniform(0).is_err());
        let t = AliasTable::new(&[3.0, 1.0]).unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn zero_weight_categories_are_never_drawn() {
        let t = AliasTable::new(&[1.0, 0.0, 2.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let i = t.draw(&mut rng);
            assert!(i == 0 || i == 2, "drew zero-weight category {i}");
        }
    }

    #[test]
    fn single_category_always_wins() {
        let t = AliasTable::new(&[42.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(t.draw(&mut rng), 0);
        assert_eq!(linear_scan_draw(&[42.0], &mut rng), 0);
    }

    /// Pearson chi-square of observed counts against expected proportions.
    fn chi_square_stat(observed: &[u64], weights: &[f64], draws: u64) -> f64 {
        let sum: f64 = weights.iter().sum();
        observed
            .iter()
            .zip(weights)
            .map(|(&o, &w)| {
                let e = w / sum * draws as f64;
                (o as f64 - e) * (o as f64 - e) / e
            })
            .sum()
    }

    #[test]
    fn alias_draws_match_the_linear_scan_distribution() {
        // Skewed 8-category weights (Table 5.1-like fractions). Both
        // samplers must be consistent with the same expected counts: the
        // chi-square statistic stays under the df=7, α=0.001 critical value
        // (deterministic seeds make this a fixed number, not a flaky bound).
        let weights = [16.7, 9.2, 21.1, 14.6, 2.4, 16.0, 19.1, 0.9];
        let table = AliasTable::new(&weights).unwrap();
        const DRAWS: u64 = 200_000;
        const CHI_CRIT_DF7_P001: f64 = 24.32;

        let mut alias_counts = [0u64; 8];
        let mut rng = StdRng::seed_from_u64(0xA11A5);
        for _ in 0..DRAWS {
            alias_counts[table.draw(&mut rng)] += 1;
        }
        let alias_chi = chi_square_stat(&alias_counts, &weights, DRAWS);
        assert!(
            alias_chi < CHI_CRIT_DF7_P001,
            "alias draws diverge from the weights: chi2 = {alias_chi:.2}"
        );

        let mut scan_counts = [0u64; 8];
        let mut rng = StdRng::seed_from_u64(0x5CA9);
        for _ in 0..DRAWS {
            scan_counts[linear_scan_draw(&weights, &mut rng)] += 1;
        }
        let scan_chi = chi_square_stat(&scan_counts, &weights, DRAWS);
        assert!(
            scan_chi < CHI_CRIT_DF7_P001,
            "linear scan diverges from the weights: chi2 = {scan_chi:.2}"
        );

        // Two-sample check: the samplers agree with each other, not just
        // with the model (chi-square on alias counts vs scan frequencies).
        let scan_freqs: Vec<f64> = scan_counts.iter().map(|&c| c as f64).collect();
        let cross_chi = chi_square_stat(&alias_counts, &scan_freqs, DRAWS);
        assert!(
            cross_chi < 2.0 * CHI_CRIT_DF7_P001,
            "alias and linear-scan samples disagree: chi2 = {cross_chi:.2}"
        );
    }

    #[test]
    fn uniform_draw_is_bit_identical_to_modulo() {
        for n in [1usize, 2, 3, 7, 64, 1000] {
            let t = AliasTable::uniform(n).unwrap();
            let mut a = StdRng::seed_from_u64(99);
            let mut b = StdRng::seed_from_u64(99);
            for _ in 0..500 {
                let via_alias = t.draw(&mut a);
                let via_modulo = (b.next_u64() % n as u64) as usize;
                assert_eq!(via_alias, via_modulo, "n = {n}");
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let t = AliasTable::new(&[1.0, 2.0, 3.0]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: AliasTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
