//! The File System Creator (FSC).
//!
//! "The FSC builds a new file system according to the file distributions for
//! each file category. […] In the new file system, we create a directory for
//! system files, and several directories, one for each virtual user. Files
//! in the system directory and a user's directory are created according to
//! the file distributions." (Section 4.1.2)
//!
//! A [`FscSpec`] describes the file population: one [`CategorySpec`] per
//! file category (file type × owner × type of use, as in Table 5.1 of the
//! paper) with its fraction of the population and its size distribution.
//! [`FileSystemCreator::build`] materializes that population inside a
//! [`Vfs`](uswg_vfs::Vfs) and returns the [`FileCatalog`] the User Simulator
//! uses to select files.
//!
//! # Example
//!
//! ```
//! use uswg_distr::DistributionSpec;
//! use uswg_fsc::{CategorySpec, FileCategory, FileSystemCreator, FscSpec};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = FscSpec::new(vec![
//!     CategorySpec::new(FileCategory::REG_USER_RDONLY, 0.6, DistributionSpec::exponential(5794.0)),
//!     CategorySpec::new(FileCategory::REG_OTHER_RDONLY, 0.4, DistributionSpec::exponential(31347.0)),
//! ])?;
//! let creator = FileSystemCreator::new(spec);
//! let mut vfs = uswg_vfs::Vfs::new(uswg_vfs::VfsConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let catalog = creator.build(&mut vfs, 2, &mut rng)?;
//! assert!(catalog.len() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alias;
mod catalog;
mod category;
mod creator;
mod error;

pub use alias::{linear_scan_draw, AliasTable};
pub use catalog::{CatalogFile, FileCatalog, FilePopularity, MAX_ZIPF_EXPONENT};
pub use category::{FileCategory, FileType, Owner, UsageClass};
pub use creator::{CategorySpec, FileSystemCreator, FillPattern, FscSpec};
pub use error::FscError;
