//! The file taxonomy of the workload model.
//!
//! "We classify files into two basic types: system files and user files.
//! Directories are treated as special files. However, users can define other
//! types of files for their particular file system." (Section 4.1.2) —
//! Table 5.1 refines this into (file type, owner, type of use) triples,
//! which this module encodes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The structural type of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FileType {
    /// A directory.
    Dir,
    /// A regular file.
    Reg,
    /// A notesfile (the UIUC campus bulletin-board files of \[DI86\]); shared,
    /// append-mostly regular files kept in their own tree.
    Notes,
}

impl FileType {
    /// Table-style name.
    pub fn name(self) -> &'static str {
        match self {
            FileType::Dir => "DIR",
            FileType::Reg => "REG",
            FileType::Notes => "NOTES",
        }
    }
}

/// Who owns a file, relative to the accessing user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Owner {
    /// The accessing user's own file (lives in their directory).
    User,
    /// Someone else's or the system's file (lives in the shared tree).
    Other,
}

impl Owner {
    /// Table-style name.
    pub fn name(self) -> &'static str {
        match self {
            Owner::User => "USER",
            Owner::Other => "OTHER",
        }
    }
}

/// How a file is used once accessed (Table 5.1's "type of use").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UsageClass {
    /// Read without modification.
    ReadOnly,
    /// Created fresh and written (e.g. compiler output).
    New,
    /// Read and written in place.
    ReadWrite,
    /// Created, used and deleted within a session.
    Temp,
}

impl UsageClass {
    /// Table-style name.
    pub fn name(self) -> &'static str {
        match self {
            UsageClass::ReadOnly => "RDONLY",
            UsageClass::New => "NEW",
            UsageClass::ReadWrite => "RD-WRT",
            UsageClass::Temp => "TEMP",
        }
    }
}

/// A file category: the (file type, owner, type of use) triple that indexes
/// every distribution in the workload model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileCategory {
    /// Structural type.
    pub file_type: FileType,
    /// Ownership relative to the accessing user.
    pub owner: Owner,
    /// Type of use.
    pub usage: UsageClass,
}

impl FileCategory {
    /// `DIR / USER / RDONLY`.
    pub const DIR_USER_RDONLY: Self = Self {
        file_type: FileType::Dir,
        owner: Owner::User,
        usage: UsageClass::ReadOnly,
    };
    /// `DIR / OTHER / RDONLY`.
    pub const DIR_OTHER_RDONLY: Self = Self {
        file_type: FileType::Dir,
        owner: Owner::Other,
        usage: UsageClass::ReadOnly,
    };
    /// `REG / USER / RDONLY`.
    pub const REG_USER_RDONLY: Self = Self {
        file_type: FileType::Reg,
        owner: Owner::User,
        usage: UsageClass::ReadOnly,
    };
    /// `REG / USER / NEW`.
    pub const REG_USER_NEW: Self = Self {
        file_type: FileType::Reg,
        owner: Owner::User,
        usage: UsageClass::New,
    };
    /// `REG / USER / RD-WRT`.
    pub const REG_USER_RDWRT: Self = Self {
        file_type: FileType::Reg,
        owner: Owner::User,
        usage: UsageClass::ReadWrite,
    };
    /// `REG / USER / TEMP`.
    pub const REG_USER_TEMP: Self = Self {
        file_type: FileType::Reg,
        owner: Owner::User,
        usage: UsageClass::Temp,
    };
    /// `REG / OTHER / RDONLY`.
    pub const REG_OTHER_RDONLY: Self = Self {
        file_type: FileType::Reg,
        owner: Owner::Other,
        usage: UsageClass::ReadOnly,
    };
    /// `REG / OTHER / RD-WRT`.
    pub const REG_OTHER_RDWRT: Self = Self {
        file_type: FileType::Reg,
        owner: Owner::Other,
        usage: UsageClass::ReadWrite,
    };
    /// `NOTES / OTHER / RDONLY`.
    pub const NOTES_OTHER_RDONLY: Self = Self {
        file_type: FileType::Notes,
        owner: Owner::Other,
        usage: UsageClass::ReadOnly,
    };

    /// The nine categories of Table 5.1, in table order.
    pub const TABLE_5_1: [Self; 9] = [
        Self::DIR_USER_RDONLY,
        Self::DIR_OTHER_RDONLY,
        Self::REG_USER_RDONLY,
        Self::REG_USER_NEW,
        Self::REG_USER_RDWRT,
        Self::REG_USER_TEMP,
        Self::REG_OTHER_RDONLY,
        Self::REG_OTHER_RDWRT,
        Self::NOTES_OTHER_RDONLY,
    ];

    /// Whether files of this category pre-exist in the initial file system.
    ///
    /// `NEW` and `TEMP` files are created by the simulated users themselves,
    /// so the FSC does not populate them.
    pub fn preexisting(self) -> bool {
        !matches!(self.usage, UsageClass::New | UsageClass::Temp)
    }
}

impl fmt::Display for FileCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}",
            self.file_type.name(),
            self.owner.name(),
            self.usage.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_table_notation() {
        assert_eq!(FileCategory::REG_USER_TEMP.to_string(), "REG/USER/TEMP");
        assert_eq!(
            FileCategory::NOTES_OTHER_RDONLY.to_string(),
            "NOTES/OTHER/RDONLY"
        );
        assert_eq!(FileCategory::REG_USER_RDWRT.to_string(), "REG/USER/RD-WRT");
    }

    #[test]
    fn table_5_1_has_nine_distinct_categories() {
        let set: std::collections::HashSet<_> = FileCategory::TABLE_5_1.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn new_and_temp_are_not_preexisting() {
        assert!(!FileCategory::REG_USER_NEW.preexisting());
        assert!(!FileCategory::REG_USER_TEMP.preexisting());
        assert!(FileCategory::REG_USER_RDONLY.preexisting());
        assert!(FileCategory::DIR_USER_RDONLY.preexisting());
    }

    #[test]
    fn serde_round_trip() {
        let c = FileCategory::REG_OTHER_RDWRT;
        let json = serde_json::to_string(&c).unwrap();
        let back: FileCategory = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
