use std::fmt;
use uswg_distr::DistrError;
use uswg_vfs::FsError;

/// Errors from building the synthetic file system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FscError {
    /// The specification has no categories.
    EmptySpec,
    /// Category fractions must be positive and sum to one.
    BadFractions {
        /// The offending sum.
        sum: f64,
    },
    /// A count parameter was zero or out of range.
    BadCount {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: u64,
    },
    /// An alias table was given unusable weights.
    BadWeights {
        /// Why the weights were rejected.
        reason: &'static str,
    },
    /// A file-popularity policy has an unusable parameter (e.g. a Zipf
    /// exponent whose weights would overflow).
    BadPopularity {
        /// Why the policy was rejected.
        reason: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A size distribution could not be instantiated.
    Distribution(DistrError),
    /// The underlying file system rejected an operation (usually `ENOSPC`).
    FileSystem(FsError),
}

impl fmt::Display for FscError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FscError::EmptySpec => write!(f, "file system spec has no categories"),
            FscError::BadFractions { sum } => {
                write!(f, "category fractions must sum to 1 (sum = {sum})")
            }
            FscError::BadCount { name, value } => {
                write!(f, "count parameter `{name}` out of range (got {value})")
            }
            FscError::BadWeights { reason } => write!(f, "alias table weights: {reason}"),
            FscError::BadPopularity { reason, value } => {
                write!(f, "file-popularity policy: {reason} (got {value})")
            }
            FscError::Distribution(e) => write!(f, "size distribution: {e}"),
            FscError::FileSystem(e) => write!(f, "file system: {e}"),
        }
    }
}

impl std::error::Error for FscError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FscError::Distribution(e) => Some(e),
            FscError::FileSystem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistrError> for FscError {
    fn from(e: DistrError) -> Self {
        FscError::Distribution(e)
    }
}

impl From<FsError> for FscError {
    fn from(e: FsError) -> Self {
        FscError::FileSystem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = FscError::Distribution(DistrError::Empty);
        assert!(e.to_string().contains("size distribution"));
        assert!(std::error::Error::source(&e).is_some());
        let e = FscError::FileSystem(FsError::NoSpace);
        assert!(e.to_string().contains("ENOSPC"));
        assert!(FscError::EmptySpec.to_string().contains("no categories"));
    }

    #[test]
    fn conversions() {
        let _: FscError = DistrError::Empty.into();
        let _: FscError = FsError::NotFound.into();
    }
}
