//! The creator proper: specification validation and file-system population.

use crate::{CatalogFile, FileCatalog, FileCategory, FilePopularity, FileType, FscError, Owner};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use uswg_distr::DistributionSpec;
use uswg_vfs::Vfs;

/// Tolerance when validating that category fractions sum to one.
const FRACTION_TOL: f64 = 1e-6;

/// One category's share of the file population and its size distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategorySpec {
    /// The category being described.
    pub category: FileCategory,
    /// Fraction of all files belonging to this category (Table 5.1's
    /// "percent of files in category" / 100).
    pub fraction: f64,
    /// Distribution of file sizes within the category.
    pub size: DistributionSpec,
}

impl CategorySpec {
    /// Creates a category spec.
    pub fn new(category: FileCategory, fraction: f64, size: DistributionSpec) -> Self {
        Self {
            category,
            fraction,
            size,
        }
    }
}

/// How created files are filled with data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FillPattern {
    /// Write a deterministic byte pattern (real data blocks are allocated).
    #[default]
    Pattern,
    /// Set sizes with `truncate` only: files are holes and occupy no blocks.
    /// Reads return zeros; use for large simulated populations.
    Sparse,
}

/// The full FSC specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FscSpec {
    /// Per-category population shares and size distributions.
    pub categories: Vec<CategorySpec>,
    /// Total pre-existing files created per virtual user (spread over the
    /// user-owned categories by their fractions).
    pub files_per_user: u64,
    /// Total pre-existing shared files (spread over the `OTHER`-owned
    /// categories by their fractions).
    pub shared_files: u64,
    /// Data fill strategy.
    pub fill: FillPattern,
    /// How the User Simulator's per-reference file picks weight the
    /// candidates: the catalog is sealed with this policy at build time,
    /// so specs opt into `size_weighted` or `zipf` hot sets without any
    /// code. Defaults to uniform — the paper's model, bit-identical to the
    /// historical modulo pick — and a serialized spec without the field
    /// deserializes to uniform, so existing spec files are unchanged.
    #[serde(default)]
    pub popularity: FilePopularity,
}

impl FscSpec {
    /// Creates a spec with the default population counts (50 files per user,
    /// 120 shared files, pattern fill).
    ///
    /// # Errors
    ///
    /// Returns [`FscError::EmptySpec`] for an empty category list and
    /// [`FscError::BadFractions`] when fractions do not sum to one within
    /// `1e-6`.
    pub fn new(categories: Vec<CategorySpec>) -> Result<Self, FscError> {
        let spec = Self {
            categories,
            files_per_user: 50,
            shared_files: 120,
            fill: FillPattern::default(),
            popularity: FilePopularity::default(),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Builder-style override of the per-user file count.
    ///
    /// # Errors
    ///
    /// Returns [`FscError::BadCount`] when `n` is zero.
    pub fn with_files_per_user(mut self, n: u64) -> Result<Self, FscError> {
        if n == 0 {
            return Err(FscError::BadCount {
                name: "files_per_user",
                value: n,
            });
        }
        self.files_per_user = n;
        Ok(self)
    }

    /// Builder-style override of the shared file count.
    ///
    /// # Errors
    ///
    /// Returns [`FscError::BadCount`] when `n` is zero.
    pub fn with_shared_files(mut self, n: u64) -> Result<Self, FscError> {
        if n == 0 {
            return Err(FscError::BadCount {
                name: "shared_files",
                value: n,
            });
        }
        self.shared_files = n;
        Ok(self)
    }

    /// Builder-style override of the fill pattern.
    pub fn with_fill(mut self, fill: FillPattern) -> Self {
        self.fill = fill;
        self
    }

    /// Builder-style override of the file-popularity policy.
    pub fn with_popularity(mut self, popularity: FilePopularity) -> Self {
        self.popularity = popularity;
        self
    }

    fn validate(&self) -> Result<(), FscError> {
        if self.categories.is_empty() {
            return Err(FscError::EmptySpec);
        }
        let sum: f64 = self.categories.iter().map(|c| c.fraction).sum();
        if (sum - 1.0).abs() > FRACTION_TOL || self.categories.iter().any(|c| c.fraction < 0.0) {
            return Err(FscError::BadFractions { sum });
        }
        // The popularity policy arrives from untrusted spec files and is
        // fed straight into the alias-table construction at build time —
        // reject unusable parameters here, where they are an error, not a
        // panic.
        self.popularity.validate()
    }
}

/// Builds a synthetic file system from an [`FscSpec`].
///
/// Directory layout (Section 4.1.2): `/system` for shared files, `/notes`
/// for notesfiles, `/u/user<k>` per virtual user, plus `/tmp/user<k>`
/// scratch directories for the `TEMP`/`NEW` files users create while running.
#[derive(Debug, Clone)]
pub struct FileSystemCreator {
    spec: FscSpec,
}

impl FileSystemCreator {
    /// Wraps a validated specification.
    pub fn new(spec: FscSpec) -> Self {
        Self { spec }
    }

    /// The underlying specification.
    pub fn spec(&self) -> &FscSpec {
        &self.spec
    }

    /// The home directory path of virtual user `k`.
    pub fn user_dir(user: usize) -> String {
        format!("/u/user{user:03}")
    }

    /// The scratch directory path of virtual user `k`.
    pub fn scratch_dir(user: usize) -> String {
        format!("/tmp/user{user:03}")
    }

    /// Populates `vfs` for `n_users` virtual users and returns the catalog.
    ///
    /// Only *pre-existing* categories are materialized; `NEW` and `TEMP`
    /// files appear later when simulated users create them. "Note that many
    /// files are not referenced. For the file distributions, we only need to
    /// consider those files which were accessed during the measurement"
    /// (Section 4.1.2) — the population counts in the spec are therefore the
    /// *accessed* population, not a whole disk.
    ///
    /// # Errors
    ///
    /// Propagates validation, distribution and file-system errors.
    pub fn build(
        &self,
        vfs: &mut Vfs,
        n_users: usize,
        rng: &mut dyn RngCore,
    ) -> Result<FileCatalog, FscError> {
        self.spec.validate()?;
        if n_users == 0 {
            return Err(FscError::BadCount {
                name: "n_users",
                value: 0,
            });
        }
        let mut catalog = FileCatalog::new();

        vfs.mkdir_all("/system")?;
        vfs.mkdir_all("/notes")?;
        vfs.mkdir_all("/u")?;
        vfs.mkdir_all("/tmp")?;

        // Shared population: OTHER-owned, pre-existing categories.
        let shared: Vec<&CategorySpec> = self
            .spec
            .categories
            .iter()
            .filter(|c| c.category.owner == Owner::Other && c.category.preexisting())
            .collect();
        self.populate(
            vfs,
            rng,
            &mut catalog,
            &shared,
            self.spec.shared_files,
            None,
        )?;

        // Per-user population: USER-owned, pre-existing categories.
        let personal: Vec<&CategorySpec> = self
            .spec
            .categories
            .iter()
            .filter(|c| c.category.owner == Owner::User && c.category.preexisting())
            .collect();
        for user in 0..n_users {
            vfs.mkdir_all(&Self::user_dir(user))?;
            vfs.mkdir_all(&Self::scratch_dir(user))?;
            self.populate(
                vfs,
                rng,
                &mut catalog,
                &personal,
                self.spec.files_per_user,
                Some(user),
            )?;
        }
        // Seal with the spec's popularity policy so the pick weighting is
        // part of the declarative workload description. Uniform sealing is
        // bit-identical to the historical unsealed modulo pick
        // (property-tested in tests/alias_equivalence.rs), so default
        // specs reproduce every earlier run byte for byte.
        catalog.seal_with(self.spec.popularity);
        Ok(catalog)
    }

    /// Creates `total` files spread across `specs` by renormalized fraction.
    fn populate(
        &self,
        vfs: &mut Vfs,
        rng: &mut dyn RngCore,
        catalog: &mut FileCatalog,
        specs: &[&CategorySpec],
        total: u64,
        owner_user: Option<usize>,
    ) -> Result<(), FscError> {
        let frac_sum: f64 = specs.iter().map(|c| c.fraction).sum();
        if frac_sum <= 0.0 || total == 0 {
            return Ok(());
        }
        for spec in specs {
            let count = ((spec.fraction / frac_sum) * total as f64).round().max(1.0) as u64;
            let dist = spec.size.build()?;
            for i in 0..count {
                let size = dist.sample(rng).round().max(0.0) as u64;
                let path = self.file_path(spec.category, owner_user, catalog.len(), i);
                let ino = match spec.category.file_type {
                    FileType::Dir => {
                        vfs.mkdir_all(&path)?;
                        vfs.resolve(&path)?
                    }
                    FileType::Reg | FileType::Notes => {
                        self.create_file(vfs, &path, size)?;
                        vfs.resolve(&path)?
                    }
                };
                catalog.add(CatalogFile {
                    path,
                    ino: ino.number(),
                    // Directories have no byte size; record the sampled size
                    // anyway as the "directory data" the workload reads.
                    size,
                    category: spec.category,
                    owner_user,
                });
            }
        }
        Ok(())
    }

    fn file_path(
        &self,
        category: FileCategory,
        owner_user: Option<usize>,
        unique: usize,
        seq: u64,
    ) -> String {
        let stem = match category.file_type {
            FileType::Dir => "dir",
            FileType::Reg => "file",
            FileType::Notes => "note",
        };
        let root = match (category.file_type, owner_user) {
            (FileType::Notes, _) => "/notes".to_string(),
            (_, Some(user)) => Self::user_dir(user),
            (_, None) => "/system".to_string(),
        };
        format!("{root}/{stem}{unique:05}_{seq:04}")
    }

    fn create_file(&self, vfs: &mut Vfs, path: &str, size: u64) -> Result<(), FscError> {
        match self.spec.fill {
            FillPattern::Sparse => {
                vfs.write_file(path, &[])?;
                vfs.truncate(path, size)?;
            }
            FillPattern::Pattern => {
                // Deterministic pattern, written in bounded chunks.
                let mut proc = vfs.new_process();
                let fd = vfs.creat(&mut proc, path)?;
                let chunk: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
                let mut left = size as usize;
                while left > 0 {
                    let n = left.min(chunk.len());
                    let written = vfs.write(&mut proc, fd, &chunk[..n])?;
                    left -= written;
                    if written == 0 {
                        break;
                    }
                }
                vfs.close(&mut proc, fd)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uswg_vfs::VfsConfig;

    fn two_category_spec() -> FscSpec {
        FscSpec::new(vec![
            CategorySpec::new(
                FileCategory::REG_USER_RDONLY,
                0.5,
                DistributionSpec::exponential(4096.0),
            ),
            CategorySpec::new(
                FileCategory::REG_OTHER_RDONLY,
                0.5,
                DistributionSpec::exponential(8192.0),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(matches!(FscSpec::new(vec![]), Err(FscError::EmptySpec)));
        let bad = FscSpec::new(vec![CategorySpec::new(
            FileCategory::REG_USER_RDONLY,
            0.4,
            DistributionSpec::exponential(1.0),
        )]);
        assert!(matches!(bad, Err(FscError::BadFractions { .. })));
        assert!(two_category_spec().with_files_per_user(0).is_err());
        assert!(two_category_spec().with_shared_files(0).is_err());
    }

    #[test]
    fn build_creates_layout() {
        let spec = two_category_spec();
        let creator = FileSystemCreator::new(spec);
        let mut vfs = Vfs::new(VfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let catalog = creator.build(&mut vfs, 3, &mut rng).unwrap();
        assert!(vfs.exists("/system"));
        assert!(vfs.exists("/notes"));
        for u in 0..3 {
            assert!(vfs.exists(&FileSystemCreator::user_dir(u)));
            assert!(vfs.exists(&FileSystemCreator::scratch_dir(u)));
        }
        // 50 per user × 3 + 120 shared (only one category on each side).
        assert_eq!(catalog.len(), 50 * 3 + 120);
        assert!(creator.spec().files_per_user == 50);
    }

    #[test]
    fn zero_users_rejected() {
        let creator = FileSystemCreator::new(two_category_spec());
        let mut vfs = Vfs::new(VfsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            creator.build(&mut vfs, 0, &mut rng),
            Err(FscError::BadCount { .. })
        ));
    }

    #[test]
    fn new_and_temp_categories_not_materialized() {
        let spec = FscSpec::new(vec![
            CategorySpec::new(
                FileCategory::REG_USER_TEMP,
                0.5,
                DistributionSpec::exponential(1000.0),
            ),
            CategorySpec::new(
                FileCategory::REG_USER_RDONLY,
                0.5,
                DistributionSpec::exponential(1000.0),
            ),
        ])
        .unwrap();
        let creator = FileSystemCreator::new(spec);
        let mut vfs = Vfs::new(VfsConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let catalog = creator.build(&mut vfs, 1, &mut rng).unwrap();
        assert!(catalog
            .files()
            .iter()
            .all(|f| f.category == FileCategory::REG_USER_RDONLY));
    }

    #[test]
    fn sparse_fill_allocates_no_blocks() {
        let spec = two_category_spec().with_fill(FillPattern::Sparse);
        let creator = FileSystemCreator::new(spec);
        let mut vfs = Vfs::new(VfsConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let catalog = creator.build(&mut vfs, 1, &mut rng).unwrap();
        assert_eq!(
            vfs.block_stats().allocated,
            0,
            "sparse files hold no blocks"
        );
        // Sizes still reflect the distribution.
        let total: u64 = catalog.files().iter().map(|f| f.size).sum();
        assert!(total > 0);
    }

    #[test]
    fn pattern_fill_writes_real_data() {
        let spec = two_category_spec();
        let creator = FileSystemCreator::new(spec);
        let mut vfs = Vfs::new(VfsConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let catalog = creator.build(&mut vfs, 1, &mut rng).unwrap();
        let file = catalog
            .files()
            .iter()
            .find(|f| f.size > 0)
            .expect("some non-empty file");
        let data = vfs.read_file(&file.path).unwrap();
        assert_eq!(data.len() as u64, file.size);
        assert!(vfs.block_stats().allocated > 0);
    }

    #[test]
    fn sampled_sizes_follow_distribution_mean() {
        let spec = FscSpec::new(vec![CategorySpec::new(
            FileCategory::REG_OTHER_RDONLY,
            1.0,
            DistributionSpec::exponential(8192.0),
        )])
        .unwrap()
        .with_shared_files(2_000)
        .unwrap()
        .with_fill(FillPattern::Sparse);
        let creator = FileSystemCreator::new(spec);
        let mut vfs = Vfs::new(VfsConfig {
            max_inodes: 1 << 20,
            ..VfsConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let catalog = creator.build(&mut vfs, 1, &mut rng).unwrap();
        let summary = catalog.characterize();
        let (count, mean) = summary[&FileCategory::REG_OTHER_RDONLY];
        assert_eq!(count, 2_000);
        assert!((mean - 8192.0).abs() / 8192.0 < 0.1, "mean = {mean}");
    }

    #[test]
    fn directory_categories_create_directories() {
        let spec = FscSpec::new(vec![
            CategorySpec::new(
                FileCategory::DIR_USER_RDONLY,
                0.5,
                DistributionSpec::exponential(714.0),
            ),
            CategorySpec::new(
                FileCategory::REG_USER_RDONLY,
                0.5,
                DistributionSpec::exponential(5794.0),
            ),
        ])
        .unwrap();
        let creator = FileSystemCreator::new(spec);
        let mut vfs = Vfs::new(VfsConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let catalog = creator.build(&mut vfs, 1, &mut rng).unwrap();
        let dir_file = catalog
            .files()
            .iter()
            .find(|f| f.category == FileCategory::DIR_USER_RDONLY)
            .expect("dir category populated");
        assert!(vfs.stat(&dir_file.path).unwrap().is_dir());
    }

    #[test]
    fn deterministic_under_seed() {
        let build = |seed| {
            let creator =
                FileSystemCreator::new(two_category_spec().with_fill(FillPattern::Sparse));
            let mut vfs = Vfs::new(VfsConfig::default());
            let mut rng = StdRng::seed_from_u64(seed);
            let catalog = creator.build(&mut vfs, 2, &mut rng).unwrap();
            catalog
                .files()
                .iter()
                .map(|f| (f.path.clone(), f.size))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(42), build(42));
        assert_ne!(build(42), build(43));
    }

    #[test]
    fn serde_spec_round_trip() {
        let spec = two_category_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: FscSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn serde_popularity_round_trips_every_policy() {
        for policy in [
            FilePopularity::Uniform,
            FilePopularity::SizeWeighted,
            FilePopularity::Zipf { exponent: 1.25 },
        ] {
            let spec = two_category_spec().with_popularity(policy);
            let json = serde_json::to_string(&spec).unwrap();
            let back: FscSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back.popularity, policy, "{json}");
        }
    }

    #[test]
    fn missing_popularity_field_defaults_to_uniform() {
        // Spec files written before the field existed must keep parsing —
        // and keep meaning the paper's uniform model. Serialize, strip the
        // field (it is declared last, so it is the trailing entry), parse.
        let spec = two_category_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let legacy = json.replace(",\"popularity\":{\"policy\":\"uniform\"}", "");
        assert_ne!(legacy, json, "the field must have been present");
        let back: FscSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.popularity, FilePopularity::Uniform);
        assert_eq!(back, spec);
    }

    #[test]
    fn absurd_zipf_exponents_are_errors_not_panics() {
        // The policy arrives from hand-editable JSON: an exponent whose
        // weights overflow must be rejected at validation time, never
        // reach the alias table's panic.
        for exponent in [-2000.0, 2000.0, f64::NAN, f64::INFINITY] {
            let spec = two_category_spec()
                .with_popularity(FilePopularity::Zipf { exponent })
                .with_fill(FillPattern::Sparse);
            let creator = FileSystemCreator::new(spec);
            let mut vfs = Vfs::new(VfsConfig::default());
            let mut rng = StdRng::seed_from_u64(8);
            assert!(
                matches!(
                    creator.build(&mut vfs, 1, &mut rng),
                    Err(FscError::BadPopularity { .. })
                ),
                "exponent {exponent} must be rejected"
            );
        }
        // The boundary itself is usable.
        let spec = two_category_spec()
            .with_popularity(FilePopularity::Zipf {
                exponent: crate::MAX_ZIPF_EXPONENT,
            })
            .with_fill(FillPattern::Sparse);
        let mut vfs = Vfs::new(VfsConfig::default());
        let mut rng = StdRng::seed_from_u64(9);
        assert!(FileSystemCreator::new(spec)
            .build(&mut vfs, 1, &mut rng)
            .is_ok());
    }

    #[test]
    fn build_seals_with_the_spec_popularity() {
        let creator = FileSystemCreator::new(
            two_category_spec()
                .with_fill(FillPattern::Sparse)
                .with_popularity(FilePopularity::SizeWeighted),
        );
        let mut vfs = Vfs::new(VfsConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let catalog = creator.build(&mut vfs, 1, &mut rng).unwrap();
        assert!(catalog.is_sealed(), "build seals the catalog");
    }
}
