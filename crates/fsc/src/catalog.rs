//! The file catalog: the FSC's output, consumed by the User Simulator.

use crate::{AliasTable, FileCategory};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One file created by the FSC (or registered later by the USIM for files
/// users create themselves).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogFile {
    /// Absolute path in the synthetic file system.
    pub path: String,
    /// Inode number in the VFS.
    pub ino: u64,
    /// Size at creation time, bytes.
    pub size: u64,
    /// The file's category.
    pub category: FileCategory,
    /// Owning virtual user for `Owner::User` categories, `None` for shared.
    pub owner_user: Option<usize>,
}

/// How [`FileCatalog::pick`] weights the candidates within one candidate
/// list (the ROADMAP's weighted-popularity follow-up to the alias tables:
/// the Walker/Vose sampler was always general, this exposes it).
///
/// Weighted popularity changes which files a seeded workload touches, so it
/// is an explicit opt-in via [`FileCatalog::seal_with`] — or declaratively
/// via `FscSpec::popularity`, the serialized form workload specs carry
/// (`{"policy": "uniform" | "size_weighted" | "zipf", ...}`; a spec
/// without the field stays uniform). The plain [`FileCatalog::seal`] stays
/// uniform and bit-identical to the historical modulo pick.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[serde(tag = "policy", rename_all = "snake_case")]
pub enum FilePopularity {
    /// Every candidate equally likely (the paper's model; bit-identical to
    /// an unsealed modulo pick).
    #[default]
    Uniform,
    /// Candidates weighted by their file size in bytes (zero-size files
    /// keep weight 1 so they stay reachable): big files attract
    /// proportionally more of the traffic, the \[DI86\]-style
    /// bytes-follow-bytes assumption.
    SizeWeighted,
    /// Zipf-like popularity by list position: the candidate at position
    /// `r` (0-based) has weight `1 / (r + 1)^exponent`. With exponent
    /// around 1 this is the classic hot-set skew observed in file-system
    /// traces.
    Zipf {
        /// The skew exponent (larger = more skewed; 0 = uniform).
        exponent: f64,
    },
}

/// Largest accepted Zipf exponent magnitude: `(r + 1)^16` stays finite
/// (and its reciprocal stays positive) for candidate lists far beyond any
/// realistic catalog, while anything past this is a typo — the weights
/// would overflow to infinity (or underflow to zero) and the alias-table
/// construction would panic on a value that arrived from an untrusted
/// spec file.
pub const MAX_ZIPF_EXPONENT: f64 = 16.0;

impl FilePopularity {
    /// Validates the policy's parameters. Spec-file deserialization feeds
    /// this (via `FscSpec::validate`), so a hand-edited JSON spec with an
    /// absurd exponent is a clean error at load time instead of a panic
    /// inside [`FileCatalog::seal_with`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::FscError::BadPopularity`] for a non-finite Zipf
    /// exponent or one whose magnitude exceeds [`MAX_ZIPF_EXPONENT`].
    pub fn validate(self) -> Result<(), crate::FscError> {
        if let FilePopularity::Zipf { exponent } = self {
            if !exponent.is_finite() {
                return Err(crate::FscError::BadPopularity {
                    reason: "zipf exponent must be finite",
                    value: exponent,
                });
            }
            if exponent.abs() > MAX_ZIPF_EXPONENT {
                return Err(crate::FscError::BadPopularity {
                    reason: "zipf exponent magnitude is capped at 16",
                    value: exponent,
                });
            }
        }
        Ok(())
    }

    /// The weight vector this policy assigns to `candidates` (catalog
    /// indices, in list order). The analytic ground truth the chi-square
    /// goodness-of-fit tests compare empirical pick frequencies against.
    pub fn weights(self, files: &[CatalogFile], candidates: &[usize]) -> Vec<f64> {
        match self {
            FilePopularity::Uniform => vec![1.0; candidates.len()],
            FilePopularity::SizeWeighted => candidates
                .iter()
                .map(|&idx| files[idx].size.max(1) as f64)
                .collect(),
            FilePopularity::Zipf { exponent } => (0..candidates.len())
                .map(|r| ((r + 1) as f64).powf(-exponent))
                .collect(),
        }
    }
}

/// An index of the synthetic file population by `(user, category)`.
///
/// The User Simulator asks the catalog for candidate files: a user accessing
/// a `USER`-owned category draws from their own directory, a user accessing
/// an `OTHER`-owned category draws from the shared pool.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FileCatalog {
    files: Vec<CatalogFile>,
    /// Indices of shared files per category.
    shared: HashMap<FileCategory, Vec<usize>>,
    /// Indices of per-user files per (user, category).
    per_user: HashMap<(usize, FileCategory), Vec<usize>>,
    /// O(1) alias samplers over the shared candidate lists, built by
    /// [`FileCatalog::seal`] and invalidated per list on mutation.
    #[serde(default)]
    shared_alias: HashMap<FileCategory, AliasTable>,
    /// Alias samplers over the per-user candidate lists.
    #[serde(default)]
    per_user_alias: HashMap<(usize, FileCategory), AliasTable>,
}

impl FileCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a file and indexes it. Returns its catalog index.
    pub fn add(&mut self, file: CatalogFile) -> usize {
        let idx = self.files.len();
        match file.owner_user {
            Some(user) => {
                self.per_user
                    .entry((user, file.category))
                    .or_default()
                    .push(idx);
                self.per_user_alias.remove(&(user, file.category));
            }
            None => {
                self.shared.entry(file.category).or_default().push(idx);
                self.shared_alias.remove(&file.category);
            }
        }
        self.files.push(file);
        idx
    }

    /// Removes a file from the index (e.g. after `unlink`). The entry stays
    /// in the backing vector so indices remain stable.
    pub fn remove(&mut self, idx: usize) {
        let Some(file) = self.files.get(idx) else {
            return;
        };
        let list = match file.owner_user {
            Some(user) => {
                self.per_user_alias.remove(&(user, file.category));
                self.per_user.get_mut(&(user, file.category))
            }
            None => {
                self.shared_alias.remove(&file.category);
                self.shared.get_mut(&file.category)
            }
        };
        if let Some(list) = list {
            list.retain(|&i| i != idx);
        }
    }

    /// Precomputes a uniform [`AliasTable`] for every candidate list, so
    /// [`FileCatalog::pick`] answers from the O(1) alias path. Sealing is
    /// purely an access-path change: a uniform alias draw is bit-identical
    /// to the modulo fallback, so a sealed and an unsealed catalog pick
    /// exactly the same files from the same PRNG stream (see
    /// `tests/alias_equivalence.rs`). Mutating the catalog afterwards
    /// invalidates the touched list; re-seal to restore it.
    pub fn seal(&mut self) {
        self.seal_with(FilePopularity::Uniform);
    }

    /// [`FileCatalog::seal`] with an explicit popularity policy: every
    /// candidate list gets an [`AliasTable`] over the policy's weights, so
    /// weighted picks stay O(1) — one `next_u64` per draw, like the
    /// uniform path. [`FilePopularity::Uniform`] reproduces `seal` exactly
    /// (and thereby the unsealed modulo pick, bit for bit); the weighted
    /// policies deliberately change which files seeded workloads touch.
    pub fn seal_with(&mut self, popularity: FilePopularity) {
        let table = |files: &[CatalogFile], list: &[usize]| match popularity {
            // The uniform constructor skips floating point entirely,
            // keeping the draw bit-identical to `u % n`.
            FilePopularity::Uniform => AliasTable::uniform(list.len()).expect("non-empty"),
            _ => AliasTable::new(&popularity.weights(files, list)).expect("positive weights"),
        };
        self.shared_alias = self
            .shared
            .iter()
            .filter(|(_, list)| !list.is_empty())
            .map(|(&cat, list)| (cat, table(&self.files, list)))
            .collect();
        self.per_user_alias = self
            .per_user
            .iter()
            .filter(|(_, list)| !list.is_empty())
            .map(|(&key, list)| (key, table(&self.files, list)))
            .collect();
    }

    /// Whether [`FileCatalog::seal`] has built any alias tables.
    pub fn is_sealed(&self) -> bool {
        !self.shared_alias.is_empty() || !self.per_user_alias.is_empty()
    }

    /// All registered files (including removed ones; see [`Self::remove`]).
    pub fn files(&self) -> &[CatalogFile] {
        &self.files
    }

    /// Number of registered files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the catalog has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The file at a catalog index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn file(&self, idx: usize) -> &CatalogFile {
        &self.files[idx]
    }

    /// Candidate file indices for `user` accessing `category`.
    pub fn candidates(&self, user: usize, category: FileCategory) -> &[usize] {
        let list = match category.owner {
            crate::Owner::User => self.per_user.get(&(user, category)),
            crate::Owner::Other => self.shared.get(&category),
        };
        list.map(Vec::as_slice).unwrap_or(&[])
    }

    /// Picks a uniformly random candidate for `user` × `category`.
    ///
    /// A sealed catalog (see [`FileCatalog::seal`]) answers through the
    /// precomputed alias table; an unsealed or invalidated list falls back
    /// to the modulo draw. Both consume one `next_u64` and return the same
    /// file for the same stream.
    pub fn pick(
        &self,
        user: usize,
        category: FileCategory,
        rng: &mut dyn RngCore,
    ) -> Option<usize> {
        let candidates = self.candidates(user, category);
        if candidates.is_empty() {
            return None;
        }
        let alias = match category.owner {
            crate::Owner::User => self.per_user_alias.get(&(user, category)),
            crate::Owner::Other => self.shared_alias.get(&category),
        };
        let i = match alias {
            Some(table) if table.len() == candidates.len() => table.draw(rng),
            _ => (rng.next_u64() % candidates.len() as u64) as usize,
        };
        Some(candidates[i])
    }

    /// Per-category summary: `(count, mean size)` over indexed (live) files.
    pub fn characterize(&self) -> HashMap<FileCategory, (usize, f64)> {
        let mut out: HashMap<FileCategory, (usize, f64)> = HashMap::new();
        let live: Vec<usize> = self
            .shared
            .values()
            .chain(self.per_user.values())
            .flatten()
            .copied()
            .collect();
        for idx in live {
            let f = &self.files[idx];
            let entry = out.entry(f.category).or_insert((0, 0.0));
            entry.0 += 1;
            entry.1 += f.size as f64;
        }
        for (_, entry) in out.iter_mut() {
            if entry.0 > 0 {
                entry.1 /= entry.0 as f64;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn file(cat: FileCategory, user: Option<usize>, size: u64, n: usize) -> CatalogFile {
        CatalogFile {
            path: format!("/f{n}"),
            ino: n as u64,
            size,
            category: cat,
            owner_user: user,
        }
    }

    #[test]
    fn user_files_are_private() {
        let mut c = FileCatalog::new();
        c.add(file(FileCategory::REG_USER_RDONLY, Some(0), 100, 0));
        c.add(file(FileCategory::REG_USER_RDONLY, Some(1), 100, 1));
        assert_eq!(c.candidates(0, FileCategory::REG_USER_RDONLY), &[0]);
        assert_eq!(c.candidates(1, FileCategory::REG_USER_RDONLY), &[1]);
    }

    #[test]
    fn shared_files_are_visible_to_all() {
        let mut c = FileCatalog::new();
        c.add(file(FileCategory::REG_OTHER_RDONLY, None, 100, 0));
        assert_eq!(c.candidates(0, FileCategory::REG_OTHER_RDONLY), &[0]);
        assert_eq!(c.candidates(7, FileCategory::REG_OTHER_RDONLY), &[0]);
    }

    #[test]
    fn pick_returns_none_when_empty() {
        let c = FileCatalog::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(c.pick(0, FileCategory::REG_USER_RDONLY, &mut rng).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn pick_covers_all_candidates() {
        let mut c = FileCatalog::new();
        for n in 0..4 {
            c.add(file(FileCategory::NOTES_OTHER_RDONLY, None, 10, n));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(
                c.pick(0, FileCategory::NOTES_OTHER_RDONLY, &mut rng)
                    .unwrap(),
            );
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn remove_hides_from_candidates_but_keeps_record() {
        let mut c = FileCatalog::new();
        let idx = c.add(file(FileCategory::REG_USER_TEMP, Some(0), 10, 0));
        assert_eq!(c.candidates(0, FileCategory::REG_USER_TEMP).len(), 1);
        c.remove(idx);
        assert!(c.candidates(0, FileCategory::REG_USER_TEMP).is_empty());
        assert_eq!(c.len(), 1, "record is retained for stable indices");
        c.remove(999); // out of range is a no-op
    }

    #[test]
    fn characterize_means() {
        let mut c = FileCatalog::new();
        c.add(file(FileCategory::REG_USER_RDONLY, Some(0), 100, 0));
        c.add(file(FileCategory::REG_USER_RDONLY, Some(0), 300, 1));
        let summary = c.characterize();
        let (count, mean) = summary[&FileCategory::REG_USER_RDONLY];
        assert_eq!(count, 2);
        assert!((mean - 200.0).abs() < 1e-12);
    }
}
