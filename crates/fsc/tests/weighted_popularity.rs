//! Weighted file popularity through the catalog's alias tables: chi-square
//! goodness-of-fit of empirical pick frequencies against the analytic
//! weights ([`FilePopularity::weights`]), plus the bit-identity guarantee
//! that the uniform policy remains the historical pick.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uswg_fsc::{CatalogFile, FileCatalog, FileCategory, FilePopularity};

/// A shared-pool catalog with `sizes.len()` files of the given sizes.
fn catalog_with_sizes(sizes: &[u64]) -> FileCatalog {
    let mut catalog = FileCatalog::new();
    for (n, &size) in sizes.iter().enumerate() {
        catalog.add(CatalogFile {
            path: format!("/shared/f{n}"),
            ino: n as u64 + 1,
            size,
            category: FileCategory::REG_OTHER_RDONLY,
            owner_user: None,
        });
    }
    catalog
}

/// Pearson chi-square statistic of observed counts against the expected
/// proportions implied by `weights`.
fn chi_square(observed: &[u64], weights: &[f64], draws: u64) -> f64 {
    let sum: f64 = weights.iter().sum();
    observed
        .iter()
        .zip(weights)
        .map(|(&o, &w)| {
            let e = w / sum * draws as f64;
            (o as f64 - e) * (o as f64 - e) / e
        })
        .sum()
}

/// Draws `draws` picks and tallies them per candidate position.
fn tally(catalog: &FileCatalog, n: usize, draws: u64, seed: u64) -> Vec<u64> {
    let mut counts = vec![0u64; n];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..draws {
        let idx = catalog
            .pick(0, FileCategory::REG_OTHER_RDONLY, &mut rng)
            .expect("candidates exist");
        counts[idx] += 1;
    }
    counts
}

const DRAWS: u64 = 200_000;
/// df = 7, α = 0.001 — deterministic seeds make each statistic a fixed
/// number, so this is a margin check, not a flaky significance test.
const CHI_CRIT_DF7_P001: f64 = 24.32;

#[test]
fn size_weighted_picks_fit_the_size_distribution() {
    // Table 5.1-flavoured sizes spanning three orders of magnitude.
    let sizes = [714u64, 779, 5_794, 11_164, 17_431, 12_431, 31_347, 18_771];
    let mut catalog = catalog_with_sizes(&sizes);
    catalog.seal_with(FilePopularity::SizeWeighted);
    assert!(catalog.is_sealed());

    let counts = tally(&catalog, sizes.len(), DRAWS, 0x517E);
    let weights = FilePopularity::SizeWeighted.weights(
        catalog.files(),
        catalog.candidates(0, FileCategory::REG_OTHER_RDONLY),
    );
    let expected: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
    assert_eq!(weights, expected, "analytic weights are the byte sizes");
    let chi = chi_square(&counts, &weights, DRAWS);
    assert!(
        chi < CHI_CRIT_DF7_P001,
        "size-weighted picks diverge from the sizes: chi2 = {chi:.2}"
    );
    // Big files must actually dominate: the largest file draws more than
    // the two smallest combined by an order of magnitude.
    assert!(counts[6] > 10 * (counts[0] + counts[1]));
}

#[test]
fn zipf_picks_fit_the_analytic_zipf_weights() {
    let sizes = [100u64; 8]; // equal sizes: the skew comes from rank alone
    let mut catalog = catalog_with_sizes(&sizes);
    let policy = FilePopularity::Zipf { exponent: 1.0 };
    catalog.seal_with(policy);

    let counts = tally(&catalog, sizes.len(), DRAWS, 0x21BF);
    let weights = policy.weights(
        catalog.files(),
        catalog.candidates(0, FileCategory::REG_OTHER_RDONLY),
    );
    for (r, w) in weights.iter().enumerate() {
        assert!((w - 1.0 / (r as f64 + 1.0)).abs() < 1e-12);
    }
    let chi = chi_square(&counts, &weights, DRAWS);
    assert!(
        chi < CHI_CRIT_DF7_P001,
        "zipf picks diverge from 1/(r+1): chi2 = {chi:.2}"
    );
    // Monotone popularity by rank.
    for w in counts.windows(2) {
        assert!(w[0] > w[1], "zipf counts must fall with rank: {counts:?}");
    }
}

#[test]
fn uniform_seal_with_is_bit_identical_to_seal_and_modulo() {
    let sizes = [10u64, 20, 30, 40, 50];
    let mut uniform = catalog_with_sizes(&sizes);
    uniform.seal_with(FilePopularity::Uniform);
    let mut plain = catalog_with_sizes(&sizes);
    plain.seal();
    let unsealed = catalog_with_sizes(&sizes);

    let mut a = StdRng::seed_from_u64(99);
    let mut b = StdRng::seed_from_u64(99);
    let mut c = StdRng::seed_from_u64(99);
    for _ in 0..2_000 {
        let via_uniform = uniform.pick(0, FileCategory::REG_OTHER_RDONLY, &mut a);
        let via_seal = plain.pick(0, FileCategory::REG_OTHER_RDONLY, &mut b);
        let via_modulo = unsealed.pick(0, FileCategory::REG_OTHER_RDONLY, &mut c);
        assert_eq!(via_uniform, via_seal);
        assert_eq!(via_uniform, via_modulo);
    }
}

#[test]
fn zero_size_files_stay_reachable_under_size_weighting() {
    let mut catalog = catalog_with_sizes(&[0, 1_000]);
    catalog.seal_with(FilePopularity::SizeWeighted);
    let counts = tally(&catalog, 2, 100_000, 7);
    // The zero-size file keeps weight 1 against 1000: ~100 expected hits —
    // rare, but never starved outright.
    assert!(counts[0] > 0, "zero-size file starved: {counts:?}");
    assert!(counts[1] > counts[0] * 100);
}

#[test]
fn per_user_lists_honour_the_policy_too() {
    let mut catalog = FileCatalog::new();
    for (n, size) in [(0usize, 10u64), (1, 1_000)] {
        catalog.add(CatalogFile {
            path: format!("/u0/f{n}"),
            ino: n as u64 + 1,
            size,
            category: FileCategory::REG_USER_RDONLY,
            owner_user: Some(0),
        });
    }
    catalog.seal_with(FilePopularity::SizeWeighted);
    let mut rng = StdRng::seed_from_u64(11);
    let mut counts = [0u64; 2];
    for _ in 0..50_000 {
        let idx = catalog
            .pick(0, FileCategory::REG_USER_RDONLY, &mut rng)
            .unwrap();
        counts[idx] += 1;
    }
    // 100:1 weights → the big file dominates (99.0% expected).
    assert!(counts[1] > 40 * counts[0], "{counts:?}");
}
