//! Property tests: the alias-table file-selection path is draw-for-draw
//! identical to the historical linear/modulo path, so sealing a catalog can
//! never change a seeded workload.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use uswg_fsc::{AliasTable, CatalogFile, FileCatalog, FileCategory};

fn file(cat: FileCategory, user: Option<usize>, n: usize) -> CatalogFile {
    CatalogFile {
        path: format!("/f{n}"),
        ino: n as u64,
        size: 100 + n as u64,
        category: cat,
        owner_user: user,
    }
}

/// The categories a pick can target, mixing shared and per-user lists.
const CATS: [FileCategory; 4] = [
    FileCategory::REG_USER_RDONLY,
    FileCategory::REG_OTHER_RDONLY,
    FileCategory::NOTES_OTHER_RDONLY,
    FileCategory::DIR_USER_RDONLY,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite oracle: a sealed catalog (alias path) and an unsealed one
    /// (modulo path) pick identical files from the same PRNG stream, for
    /// any population shape and any pick sequence.
    #[test]
    fn sealed_and_unsealed_catalogs_pick_identically(
        per_cat in prop::collection::vec((0usize..4, 1usize..30), 1..12),
        picks in prop::collection::vec((0usize..3, 0usize..4), 1..200),
        seed in 0u64..1_000_000,
    ) {
        let mut unsealed = FileCatalog::new();
        let mut n = 0usize;
        for &(cat_idx, count) in &per_cat {
            let cat = CATS[cat_idx];
            for _ in 0..count {
                let owner = match cat.owner {
                    uswg_fsc::Owner::User => Some(n % 3),
                    uswg_fsc::Owner::Other => None,
                };
                unsealed.add(file(cat, owner, n));
                n += 1;
            }
        }
        let mut sealed = unsealed.clone();
        sealed.seal();
        prop_assert!(sealed.is_sealed());

        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        for &(user, cat_idx) in &picks {
            let cat = CATS[cat_idx];
            let a = sealed.pick(user, cat, &mut rng_a);
            let b = unsealed.pick(user, cat, &mut rng_b);
            prop_assert_eq!(a, b, "sealed and unsealed picks diverged");
        }
        // Both consumed the same number of random words.
        prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    /// The uniform alias draw is bit-identical to `u % n` for every size,
    /// not just the ones the catalog happens to produce.
    #[test]
    fn uniform_alias_matches_modulo_for_any_size(n in 1usize..5_000, seed in 0u64..1_000_000) {
        let table = AliasTable::uniform(n).unwrap();
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(table.draw(&mut a), (b.next_u64() % n as u64) as usize);
        }
    }

    /// Mutating a sealed catalog invalidates the touched list: picks remain
    /// correct (never a stale or out-of-range index) and still mirror the
    /// unsealed catalog.
    #[test]
    fn mutation_after_seal_stays_equivalent(
        initial in 2usize..20,
        removals in prop::collection::vec(0usize..20, 1..6),
        seed in 0u64..1_000_000,
    ) {
        let cat = FileCategory::REG_OTHER_RDONLY;
        let mut sealed = FileCatalog::new();
        for i in 0..initial {
            sealed.add(file(cat, None, i));
        }
        let mut unsealed = sealed.clone();
        sealed.seal();
        for &r in &removals {
            sealed.remove(r % initial);
            unsealed.remove(r % initial);
        }
        // One list grew back after sealing, too.
        sealed.add(file(cat, None, initial));
        unsealed.add(file(cat, None, initial));

        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let a = sealed.pick(0, cat, &mut rng_a);
            let b = unsealed.pick(0, cat, &mut rng_b);
            prop_assert_eq!(a, b);
            if let Some(idx) = a {
                prop_assert!(idx <= initial, "picked an index that never existed");
            }
        }
    }
}
