//! The `uswg` binary: parse the command line, execute, print.
//!
//! Exit codes: 0 success, 2 any failure (usage, I/O, corrupt input,
//! simulation error), 3 `analyze --salvage` succeeded on a truncated file
//! (the report covers the intact prefix only).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match uswg_cli::parse_args(args).and_then(uswg_cli::execute_with_status) {
        Ok((text, status)) => {
            print!("{text}");
            if status != uswg_cli::EXIT_OK {
                std::process::exit(status);
            }
        }
        Err(e) => {
            eprintln!("uswg: {e}");
            eprintln!("run `uswg help` for usage");
            std::process::exit(2);
        }
    }
}
