//! The `uswg` binary: parse the command line, execute, print.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match uswg_cli::parse_args(args).and_then(uswg_cli::execute) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("uswg: {e}");
            eprintln!("run `uswg help` for usage");
            std::process::exit(2);
        }
    }
}
