//! Library half of the `uswg` command-line tool: argument parsing and the
//! subcommand implementations, separated from `main` so they are testable.
//!
//! Subcommands (the workflow of the paper's Figure 4.1, without the X11
//! session):
//!
//! * `uswg init <spec.json>` — write the paper-default workload spec for
//!   editing (the "specify distributions" step);
//! * `uswg run <spec.json> [--model M] [--direct] [--out log.json]` — build
//!   the file system, simulate the users, print the summary tables;
//! * `uswg fit <data.txt> --family exp|phase:K|gamma:K` — fit a
//!   distribution family to one-number-per-line data and report fit
//!   quality (the GDS fitting step);
//! * `uswg tables` — print the built-in Table 5.1/5.2/5.4 presets.

#![warn(missing_docs)]

use std::fmt::Write as _;
use uswg_core::experiment::ModelConfig;
use uswg_core::{
    fit, gof, metrics, plot, presets, CoreError, DistrError, Distribution, NfsParams,
    SchedulerBackend, Table, UsageLog, WorkloadSpec,
};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `init <path>`: write the default spec.
    Init {
        /// Destination path for the JSON spec.
        path: String,
    },
    /// `run <path>`: execute a workload spec.
    Run {
        /// Path of the JSON spec.
        path: String,
        /// Timing model (None = direct driver).
        model: Option<ModelConfig>,
        /// Optional path to write the usage log JSON.
        out: Option<String>,
        /// Event-queue backend override (None = the spec's choice, which
        /// itself defaults to `USWG_SCHEDULER` or the heap).
        scheduler: Option<SchedulerBackend>,
    },
    /// `fit <path> --family F`: fit a family to a data file.
    Fit {
        /// Path of the data file (one non-negative number per line).
        path: String,
        /// Family spec: `exp`, `phase:K` or `gamma:K`.
        family: Family,
    },
    /// `tables`: print the paper presets.
    Tables,
    /// `help`: print usage.
    Help,
}

/// A distribution family selector for `fit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Single exponential.
    Exponential,
    /// Phase-type exponential with K phases.
    PhaseType(usize),
    /// Multi-stage gamma with K stages.
    Gamma(usize),
}

/// Errors produced by the CLI layer.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Problem reading or writing a file.
    Io(std::io::Error),
    /// Workload-generator error.
    Core(CoreError),
    /// Distribution-engine error.
    Distr(DistrError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Distr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Core(e)
    }
}
impl From<DistrError> for CliError {
    fn from(e: DistrError) -> Self {
        CliError::Distr(e)
    }
}

/// The usage banner.
pub const USAGE: &str = "\
uswg — user-oriented synthetic workload generator

USAGE:
  uswg init <spec.json>                 write the paper-default workload spec
  uswg run <spec.json> [OPTIONS]        execute a workload spec
      --model <M>      timing model: nfs | nfs-cached | local | whole-file |
                       distributed:<servers>   (default: direct driver, no model)
      --out <log.json> write the usage log as JSON
      --scheduler <S>  event-queue backend: heap | calendar (default: the
                       spec's choice; both give byte-identical results,
                       calendar is faster beyond ~100k concurrent users)
  uswg fit <data.txt> --family <F>      fit a family to one-number-per-line data
      <F> = exp | phase:<K> | gamma:<K>
  uswg tables                           print the Table 5.1/5.2/5.4 presets
  uswg help                             this message
";

/// Parses a model name into a configuration.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown names or bad server counts.
pub fn parse_model(name: &str) -> Result<ModelConfig, CliError> {
    if let Some(rest) = name.strip_prefix("distributed:") {
        let servers: usize = rest
            .parse()
            .map_err(|_| CliError::Usage(format!("bad server count `{rest}`")))?;
        if servers == 0 {
            return Err(CliError::Usage("server count must be positive".into()));
        }
        return Ok(ModelConfig::distributed_nfs(servers));
    }
    match name {
        "nfs" => Ok(ModelConfig::default_nfs()),
        "nfs-cached" => Ok(ModelConfig::Nfs(NfsParams::with_cache(8_192))),
        "local" => Ok(ModelConfig::default_local()),
        "whole-file" => Ok(ModelConfig::default_whole_file()),
        other => Err(CliError::Usage(format!(
            "unknown model `{other}` (expected nfs, nfs-cached, local, whole-file, distributed:<n>)"
        ))),
    }
}

/// Parses a family selector.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown families or bad phase counts.
pub fn parse_family(name: &str) -> Result<Family, CliError> {
    if name == "exp" {
        return Ok(Family::Exponential);
    }
    for (prefix, ctor) in [
        ("phase:", Family::PhaseType as fn(usize) -> Family),
        ("gamma:", Family::Gamma as fn(usize) -> Family),
    ] {
        if let Some(rest) = name.strip_prefix(prefix) {
            let k: usize = rest
                .parse()
                .map_err(|_| CliError::Usage(format!("bad component count `{rest}`")))?;
            if k == 0 || k > 16 {
                return Err(CliError::Usage("component count must be 1-16".into()));
            }
            return Ok(ctor(k));
        }
    }
    Err(CliError::Usage(format!(
        "unknown family `{name}` (expected exp, phase:<K>, gamma:<K>)"
    )))
}

/// Parses a full argument list (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed command lines.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let args: Vec<String> = args.into_iter().collect();
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "tables" => Ok(Command::Tables),
        "init" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("init needs a destination path".into()))?;
            Ok(Command::Init { path: path.clone() })
        }
        "fit" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("fit needs a data file".into()))?
                .clone();
            let mut family = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--family" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--family needs a value".into()))?;
                        family = Some(parse_family(v)?);
                        i += 2;
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}`")));
                    }
                }
            }
            let family = family.ok_or_else(|| CliError::Usage("fit requires --family".into()))?;
            Ok(Command::Fit { path, family })
        }
        "run" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("run needs a spec file".into()))?
                .clone();
            let mut model = None;
            let mut out = None;
            let mut scheduler = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--model" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--model needs a value".into()))?;
                        model = Some(parse_model(v)?);
                        i += 2;
                    }
                    "--direct" => {
                        model = None;
                        i += 1;
                    }
                    "--out" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--out needs a path".into()))?;
                        out = Some(v.clone());
                        i += 2;
                    }
                    "--scheduler" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--scheduler needs a value".into()))?;
                        scheduler = Some(SchedulerBackend::parse(v).ok_or_else(|| {
                            CliError::Usage(format!(
                                "unknown scheduler `{v}` (expected heap, calendar)"
                            ))
                        })?);
                        i += 2;
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}`")));
                    }
                }
            }
            Ok(Command::Run {
                path,
                model,
                out,
                scheduler,
            })
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Propagates I/O, parsing and simulation errors.
pub fn execute(command: Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Tables => Ok(render_tables()),
        Command::Init { path } => {
            let spec = WorkloadSpec::paper_default()?;
            std::fs::write(&path, spec.to_json()?)?;
            Ok(format!(
                "wrote the paper-default workload spec to {path}\n\
                 edit it, then: uswg run {path} --model nfs\n"
            ))
        }
        Command::Run {
            path,
            model,
            out,
            scheduler,
        } => {
            let mut spec = WorkloadSpec::from_json(&std::fs::read_to_string(&path)?)?;
            if let Some(backend) = scheduler {
                spec.run.scheduler = Some(backend);
            }
            let (log, header) = match &model {
                Some(m) => {
                    let report = spec.run_des(m)?;
                    let header = format!(
                        "model {} | {} events | {} simulated\n",
                        report.model, report.events, report.duration
                    );
                    (report.log, header)
                }
                None => {
                    let log = spec.run_direct()?;
                    (log, "direct driver (no timing model)\n".to_string())
                }
            };
            let mut text = header;
            text.push_str(&render_run_summary(&log, model.is_some()));
            if let Some(out_path) = out {
                std::fs::write(&out_path, log.to_json().map_err(CoreError::from)?)?;
                let _ = writeln!(text, "usage log written to {out_path}");
            }
            Ok(text)
        }
        Command::Fit { path, family } => {
            let data = read_data(&path)?;
            fit_report(&data, family)
        }
    }
}

fn read_data(path: &str) -> Result<Vec<f64>, CliError> {
    let raw = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (lineno, line) in raw.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v: f64 = line.parse().map_err(|_| {
            CliError::Usage(format!("{path}:{}: not a number: `{line}`", lineno + 1))
        })?;
        out.push(v);
    }
    if out.len() < 2 {
        return Err(CliError::Usage(format!(
            "{path}: need at least 2 data points"
        )));
    }
    Ok(out)
}

fn fit_report(data: &[f64], family: Family) -> Result<String, CliError> {
    let dist: Box<dyn Distribution> = match family {
        Family::Exponential => Box::new(fit::fit_exponential(data)?),
        Family::PhaseType(k) => Box::new(fit::fit_phase_type(data, k)?),
        Family::Gamma(k) => Box::new(fit::fit_multi_stage_gamma(data, k)?),
    };
    let ks = gof::ks_statistic(data, &*dist)?;
    let mut text = format!(
        "fitted {family:?}: mean {:.3}, std {:.3}\nKS D = {:.4} (p = {:.4})\n",
        dist.mean(),
        dist.std_dev(),
        ks.statistic,
        ks.p_value
    );
    if data.len() >= 100 {
        let chi = gof::chi_square(data, &*dist, 20)?;
        let _ = writeln!(
            text,
            "chi-square = {:.1} ({} dof, p = {:.4})",
            chi.statistic, chi.degrees_of_freedom, chi.p_value
        );
    }
    let hi = dist.quantile(0.999);
    text.push_str(&plot::plot_pdf(&*dist, dist.support_min(), hi, 64, 10));
    Ok(text)
}

fn render_run_summary(log: &UsageLog, with_model: bool) -> String {
    let mut table = Table::new(vec![
        "system call",
        "count",
        "access size (B)",
        "response (µs)",
    ])
    .with_title("Per-system-call summary");
    for row in metrics::op_kind_summaries(log) {
        table.row(vec![
            row.kind.to_string(),
            row.count.to_string(),
            row.access_size.mean_std(),
            row.response.mean_std(),
        ]);
    }
    let mut text = table.render();
    let _ = writeln!(text, "sessions: {}", log.sessions().len());
    if with_model {
        let _ = writeln!(
            text,
            "response time per byte: {:.3} µs/B",
            metrics::response_time_per_byte(log)
        );
    }
    text
}

fn render_tables() -> String {
    let mut text = String::new();
    let mut t1 = Table::new(vec!["category", "mean size (B)", "% of files"])
        .with_title("Table 5.1: file characterization");
    for &(cat, size, pct) in presets::TABLE_5_1.iter() {
        t1.row(vec![
            cat.to_string(),
            format!("{size:.0}"),
            format!("{pct:.1}"),
        ]);
    }
    text.push_str(&t1.render());
    text.push('\n');
    let mut t2 = Table::new(vec![
        "category",
        "accesses/byte",
        "file size",
        "files",
        "% users",
    ])
    .with_title("Table 5.2: user characterization");
    for &(cat, apb, size, files, pct) in presets::TABLE_5_2.iter() {
        t2.row(vec![
            cat.to_string(),
            format!("{apb:.3}"),
            format!("{size:.0}"),
            format!("{files:.1}"),
            format!("{pct:.0}"),
        ]);
    }
    text.push_str(&t2.render());
    text.push('\n');
    let mut t4 = Table::new(vec!["user type", "think time (µs)"])
        .with_title("Table 5.4: simulated user types");
    for (name, think) in [
        ("extremely heavy I/O", presets::THINK_EXTREMELY_HEAVY),
        ("heavy I/O", presets::THINK_HEAVY),
        ("light I/O", presets::THINK_LIGHT),
    ] {
        t4.row(vec![name.to_string(), format!("{think:.0}")]);
    }
    text.push_str(&t4.render());
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_help_and_tables() {
        assert_eq!(parse_args(argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(Vec::new()).unwrap(), Command::Help);
        assert_eq!(parse_args(argv("tables")).unwrap(), Command::Tables);
    }

    #[test]
    fn parses_run_variants() {
        let cmd = parse_args(argv("run spec.json --model nfs --out log.json")).unwrap();
        match cmd {
            Command::Run {
                path,
                model,
                out,
                scheduler,
            } => {
                assert_eq!(path, "spec.json");
                assert_eq!(model.unwrap().name(), "nfs");
                assert_eq!(out.as_deref(), Some("log.json"));
                assert_eq!(scheduler, None);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("run spec.json --direct")).unwrap();
        assert!(matches!(cmd, Command::Run { model: None, .. }));
        let cmd = parse_args(argv("run spec.json --model distributed:3")).unwrap();
        match cmd {
            Command::Run { model: Some(m), .. } => assert_eq!(m.name(), "distributed-nfs"),
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("run spec.json --scheduler calendar")).unwrap();
        match cmd {
            Command::Run { scheduler, .. } => {
                assert_eq!(scheduler, Some(SchedulerBackend::Calendar));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(argv("run")).is_err());
        assert!(parse_args(argv("run spec.json --model warp-drive")).is_err());
        assert!(parse_args(argv("run spec.json --scheduler splay")).is_err());
        assert!(parse_args(argv("run spec.json --scheduler")).is_err());
        assert!(parse_args(argv("run spec.json --bogus")).is_err());
        assert!(parse_args(argv("frobnicate")).is_err());
        assert!(parse_args(argv("fit data.txt")).is_err());
        assert!(parse_model("distributed:0").is_err());
        assert!(parse_family("phase:0").is_err());
        assert!(parse_family("phase:99").is_err());
        assert!(parse_family("cauchy").is_err());
    }

    #[test]
    fn parses_families() {
        assert_eq!(parse_family("exp").unwrap(), Family::Exponential);
        assert_eq!(parse_family("phase:3").unwrap(), Family::PhaseType(3));
        assert_eq!(parse_family("gamma:2").unwrap(), Family::Gamma(2));
    }

    #[test]
    fn help_and_tables_render() {
        let help = execute(Command::Help).unwrap();
        assert!(help.contains("uswg run"));
        let tables = execute(Command::Tables).unwrap();
        assert!(tables.contains("Table 5.1"));
        assert!(tables.contains("REG/USER/TEMP"));
        assert!(tables.contains("extremely heavy I/O"));
    }

    #[test]
    fn init_run_fit_round_trip() {
        let dir = std::env::temp_dir().join(format!("uswg-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        let log_path = dir.join("log.json");

        // init
        let msg = execute(Command::Init {
            path: spec_path.to_string_lossy().into(),
        })
        .unwrap();
        assert!(msg.contains("wrote"));

        // shrink the spec so the test is fast
        let mut spec =
            WorkloadSpec::from_json(&std::fs::read_to_string(&spec_path).unwrap()).unwrap();
        spec.run.sessions_per_user = 2;
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(10)
            .unwrap();
        std::fs::write(&spec_path, spec.to_json().unwrap()).unwrap();

        // run (direct) with log output
        let out = execute(Command::Run {
            path: spec_path.to_string_lossy().into(),
            model: None,
            out: Some(log_path.to_string_lossy().into()),
            scheduler: None,
        })
        .unwrap();
        assert!(out.contains("Per-system-call summary"));
        assert!(out.contains("sessions: 2"));
        let log = UsageLog::from_json(&std::fs::read_to_string(&log_path).unwrap()).unwrap();
        assert!(!log.ops().is_empty());

        // run (modelled), once per scheduler backend: same spec, same seed,
        // so the rendered summaries must be identical text.
        let run_with = |scheduler| {
            execute(Command::Run {
                path: spec_path.to_string_lossy().into(),
                model: Some(ModelConfig::default_local()),
                out: None,
                scheduler,
            })
            .unwrap()
        };
        let out = run_with(Some(SchedulerBackend::Heap));
        assert!(out.contains("response time per byte"));
        assert_eq!(out, run_with(Some(SchedulerBackend::Calendar)));

        // fit
        let data_path = dir.join("data.txt");
        let mut body = String::from("# exponential-ish data\n");
        let truth = uswg_core::Exponential::new(500.0).unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..500 {
            let _ = writeln!(body, "{:.3}", truth.sample(&mut rng));
        }
        std::fs::write(&data_path, body).unwrap();
        let out = execute(Command::Fit {
            path: data_path.to_string_lossy().into(),
            family: Family::Exponential,
        })
        .unwrap();
        assert!(out.contains("KS D ="));

        std::fs::remove_dir_all(&dir).ok();
    }
}
