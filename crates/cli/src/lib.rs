//! Library half of the `uswg` command-line tool: argument parsing and the
//! subcommand implementations, separated from `main` so they are testable.
//!
//! Subcommands (the workflow of the paper's Figure 4.1, without the X11
//! session):
//!
//! * `uswg init <spec.json>` — write the paper-default workload spec for
//!   editing (the "specify distributions" step);
//! * `uswg run <spec.json> [--model M] [--direct] [--out log.json]` — build
//!   the file system, simulate the users, print the summary tables;
//! * `uswg fit <data.txt> --family exp|phase:K|gamma:K` — fit a
//!   distribution family to one-number-per-line data and report fit
//!   quality (the GDS fitting step);
//! * `uswg fit <run.bin> [--out spec.json]` — close the loop: stream a
//!   spill capture through the fit collector, model every usage measure
//!   with the best family by KS distance, and emit a complete runnable
//!   workload spec (the paper's measure → characterize → regenerate
//!   cycle);
//! * `uswg analyze <run.bin>` — the Usage Analyzer over a spill file:
//!   stream the binary log through the `uswg_analyze` machinery (op mix,
//!   access-size/response summaries, per-user-type breakdown) without ever
//!   reconstructing a `UsageLog` in memory;
//! * `uswg sweep <spec.json> --model M --users 1,2,4…` — run a Chapter 5
//!   sweep (users, mix or access size) across cores, memory-flat by
//!   default;
//! * `uswg replicate <spec.json> --model M --seeds …` — rerun the same
//!   workload under independent seeds and report the 95% CI;
//! * `uswg drive <spec.json> --model M` — stream the workload open-loop
//!   against a live in-process target in scaled wall time (bounded queue,
//!   shed-oldest, deadlines, retries), fed by a concurrent DES producer
//!   or, with `--from-spill`, by a previous capture;
//! * `uswg tables` — print the built-in Table 5.1/5.2/5.4 presets.

#![warn(missing_docs)]

use serde::Serialize;
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};
use uswg_core::experiment::{
    access_size_sweep_with, mix_sweep_with, run_des_replicated, user_sweep_with, ModelConfig,
    Parallelism, SweepMode, SweepPoint,
};
use uswg_core::{
    collect_fit, fit, gof, metrics, plot, presets, scan, synthesize_spec, CoreError, DistrError,
    Distribution, FrameIndex, LogSink, MeasureFit, NfsParams, ScanOptions, SchedulerBackend,
    SpillCodec, SpillReader, SpillRecord, SpillSink, Summary, SummarySink, SynthesisOptions, Table,
    UsageLog, WorkloadSpec,
};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `init <path>`: write the default spec.
    Init {
        /// Destination path for the JSON spec.
        path: String,
    },
    /// `run <path>`: execute a workload spec.
    Run {
        /// Path of the JSON spec.
        path: String,
        /// Timing model (None = direct driver).
        model: Option<ModelConfig>,
        /// Optional path to write the usage log JSON.
        out: Option<String>,
        /// Event-queue backend override (None = the spec's choice, which
        /// itself defaults to `USWG_SCHEDULER` or the heap).
        scheduler: Option<SchedulerBackend>,
        /// Optional path to stream the binary columnar log to during the
        /// run (full fidelity, O(1) resident memory; requires a model).
        spill: Option<String>,
        /// Shard the single run across this many independent DES
        /// instances (None = the spec's choice, which itself defaults to
        /// `USWG_SHARDS` or the exact unsharded path).
        shards: Option<NonZeroUsize>,
        /// Override the spec's population size (the scale knob for smoke
        /// runs; applied before the file system is generated).
        users: Option<NonZeroUsize>,
        /// Stream into the O(1) summary sink and print only the headline
        /// numbers — no usage log is materialized (requires a model).
        summary: bool,
    },
    /// `sweep <path>`: run one of the Chapter 5 sweeps.
    Sweep {
        /// Path of the JSON spec.
        path: String,
        /// Timing model to measure.
        model: ModelConfig,
        /// The swept axis and its points.
        axis: SweepAxis,
        /// Per-point retention (summary = O(1) memory, the default).
        mode: SweepMode,
        /// Worker threads (None = one per core).
        jobs: Option<usize>,
        /// Event-queue backend override.
        scheduler: Option<SchedulerBackend>,
        /// Per-point shard-count override (see `run`'s `shards`).
        shards: Option<NonZeroUsize>,
    },
    /// `replicate <path>`: rerun one workload under several seeds.
    Replicate {
        /// Path of the JSON spec.
        path: String,
        /// Timing model to measure.
        model: ModelConfig,
        /// The seeds to run.
        seeds: SeedSpec,
        /// Per-point retention (summary = O(1) memory, the default).
        mode: SweepMode,
        /// Worker threads (None = one per core).
        jobs: Option<usize>,
        /// Event-queue backend override.
        scheduler: Option<SchedulerBackend>,
        /// Per-replicate shard-count override (see `run`'s `shards`).
        shards: Option<NonZeroUsize>,
    },
    /// `fit <path>`: fit a family to a data file, or a whole workload
    /// spec to a spill capture (distinguished by the file's magic).
    Fit {
        /// Path of the data file (one non-negative number per line) or of
        /// a binary spill capture (v1 or v2, written by `run --spill`).
        path: String,
        /// Family spec: `exp`, `phase:K` or `gamma:K` (text data only —
        /// a capture fits every measure and picks families itself).
        family: Option<Family>,
        /// Write the fitted runnable spec JSON here (captures only).
        out: Option<String>,
        /// Emit a machine-readable JSON report, spec embedded (captures
        /// only).
        json: bool,
        /// Keep records completing at or after this time, µs (captures
        /// only; uses the index footer when present, as `analyze`).
        since: Option<u64>,
        /// Keep records completing at or before this time, µs.
        until: Option<u64>,
        /// Decode every k-th selected frame (a cheap estimate).
        sample: Option<u64>,
    },
    /// `analyze <path>`: stream a spill file through the Usage Analyzer.
    Analyze {
        /// Path of the binary spill file (v1 or v2).
        path: String,
        /// Emit a machine-readable JSON report instead of tables.
        json: bool,
        /// Include the per-user-type session breakdown.
        by_type: bool,
        /// Accept a *truncated* file and report over the intact prefix
        /// (with a warning and exit status 3). Corrupt frames still fail
        /// closed — salvage trusts checksummed frames only.
        salvage: bool,
        /// Keep records completing at or after this time, µs. With an
        /// index footer present, only overlapping frames are decoded.
        since: Option<u64>,
        /// Keep records completing at or before this time, µs.
        until: Option<u64>,
        /// Decode every k-th selected frame (requires an index footer to
        /// skip; thins a huge capture into a cheap estimate).
        sample: Option<u64>,
        /// Fan disjoint frame ranges across this many stealpool workers.
        jobs: Option<usize>,
    },
    /// `drive <path>`: stream the workload's op stream — from a live DES
    /// run on a producer thread, or from a spill capture — open-loop
    /// against the in-process loopback target in scaled wall time.
    Drive {
        /// Path of the JSON spec.
        path: String,
        /// Timing model whose DES run feeds the pacer (required unless
        /// `from_spill` replays a capture instead).
        model: Option<ModelConfig>,
        /// Replay a `uswg run --spill` capture (either codec) instead of
        /// running the DES; the spec still supplies retry policy and seed.
        from_spill: Option<String>,
        /// Wall-time compression factor (simulated µs per wall µs).
        speedup: f64,
        /// Maximum concurrently executing operations.
        max_in_flight: usize,
        /// Bounded pacer→worker queue capacity (shed-oldest when full).
        queue_cap: usize,
        /// Per-op deadline in wall µs from scheduled arrival (0 = none).
        deadline_micros: u64,
        /// Loopback target service time per op, µs (the capacity knob).
        service_micros: u64,
        /// Loopback transient-failure rate, parts per million.
        fail_ppm: u32,
    },
    /// `tables`: print the paper presets.
    Tables,
    /// `help`: print usage.
    Help,
}

/// How a `replicate` command names its seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedSpec {
    /// An explicit `--seeds` list, run verbatim.
    List(Vec<u64>),
    /// `--replicates N`: N consecutive seeds counting up from the spec's
    /// base seed (resolved when the spec is loaded).
    Count(u64),
}

impl SeedSpec {
    /// The concrete seed list for a spec whose base seed is `base`.
    fn resolve(&self, base: u64) -> Vec<u64> {
        match self {
            SeedSpec::List(seeds) => seeds.clone(),
            SeedSpec::Count(n) => (0..*n).map(|k| base.wrapping_add(k)).collect(),
        }
    }
}

/// The swept axis of a `sweep` command.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Concurrent users (Table 5.3, Figures 5.6–5.11).
    Users(Vec<usize>),
    /// Heavy-user fraction of the population (Figures 5.7–5.11 panels).
    Mix(Vec<f64>),
    /// Mean access size in bytes (Figure 5.12).
    Sizes(Vec<f64>),
}

/// A distribution family selector for `fit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Single exponential.
    Exponential,
    /// Phase-type exponential with K phases.
    PhaseType(usize),
    /// Multi-stage gamma with K stages.
    Gamma(usize),
}

/// Errors produced by the CLI layer.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Problem reading or writing a file.
    Io(std::io::Error),
    /// Workload-generator error.
    Core(CoreError),
    /// Distribution-engine error.
    Distr(DistrError),
    /// Live-driver error.
    Drive(uswg_drive::DriveError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Core(e) => write!(f, "{e}"),
            CliError::Distr(e) => write!(f, "{e}"),
            CliError::Drive(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}
impl From<CoreError> for CliError {
    fn from(e: CoreError) -> Self {
        CliError::Core(e)
    }
}
impl From<DistrError> for CliError {
    fn from(e: DistrError) -> Self {
        CliError::Distr(e)
    }
}
impl From<uswg_drive::DriveError> for CliError {
    fn from(e: uswg_drive::DriveError) -> Self {
        CliError::Drive(e)
    }
}

/// The usage banner.
pub const USAGE: &str = "\
uswg — user-oriented synthetic workload generator

USAGE:
  uswg init <spec.json>                 write the paper-default workload spec
  uswg run <spec.json> [OPTIONS]        execute a workload spec
      --model <M>      timing model: nfs | nfs-cached | local | whole-file |
                       distributed:<servers>   (default: direct driver, no model)
      --out <log.json> write the usage log as JSON
      --spill <p.bin>  stream the log to a compressed binary columnar file
                       during the run (full fidelity, O(1) resident memory;
                       model runs only — inspect it with uswg analyze)
      --scheduler <S>  event-queue backend: heap | calendar (default: the
                       spec's choice; both give byte-identical results,
                       calendar is faster beyond ~100k concurrent users)
      --shards <K>     split this one run into K independent DES instances
                       across cores and merge deterministically (model runs
                       only; K=1 replays the exact path byte for byte, K>1
                       approximates resource contention per shard; with
                       --spill the per-shard streams spill to disk and k-way
                       merge frame-by-frame — memory stays flat in K)
      --users <N>      override the spec's population size before the file
                       system is generated (scale knob for smoke runs)
      --summary        stream into the O(1) summary sink and print only the
                       headline numbers — no usage log is kept, so memory
                       stays flat at any population (model runs only;
                       conflicts with --out/--spill)
  uswg sweep <spec.json> --model <M> <AXIS> [OPTIONS]
                                        run a Chapter 5 sweep across cores
      <AXIS> = --users 1,2,4,8 | --mix 0,0.5,1 | --sizes 128,512,2048
      --mode <R>       summary (O(1) memory per point, default) | full-log
      --jobs <N>       worker threads (default: one per core)
      --scheduler <S>  event-queue backend override
      --shards <K>     shard every point's run K ways (as for run)
  uswg replicate <spec.json> --model <M> [OPTIONS]
                                        rerun under independent seeds, report 95% CI
      --seeds 1,2,3    explicit seed list
      --replicates <N> N seeds counting up from the spec's seed (default 5)
      --mode/--jobs/--scheduler/--shards  as for sweep
  uswg drive <spec.json> --model <M> [OPTIONS]
                                        stream the workload open-loop against
                                        the in-process loopback target in
                                        scaled wall time; the DES runs on a
                                        producer thread and feeds the pacer
                                        through a bounded channel, so memory
                                        stays O(queue) however long the run
      --from-spill <F> replay a run --spill capture (either codec) instead
                       of running the DES — no --model needed; a truncated
                       capture drains what it has, warns, exit status 3
      --speedup <X>    wall-time compression (simulated µs per wall µs,
                       default 1: real time)
      --max-in-flight <N>  concurrent-operation cap / worker count (default 4)
      --queue-cap <N>  bounded arrival queue; oldest waiting op is shed when
                       full, so memory never grows with the backlog
                       (default 1024)
      --deadline-us <D>  per-op deadline from scheduled arrival (0 = none)
      --service-us <S> loopback service time per op — the capacity knob
      --fail-ppm <P>   loopback transient-failure rate (per million); failed
                       attempts retry under the spec's fault retry policy
  uswg fit <data.txt> --family <F>      fit a family to one-number-per-line data
      <F> = exp | phase:<K> | gamma:<K>
  uswg fit <run.bin> [OPTIONS]          fit a complete workload spec from a
                                        spill capture (written by run --spill):
                                        per-user-type think times, access
                                        sizes, session gaps and per-category
                                        usage are each modeled by the best
                                        family by KS distance, and the file
                                        system is sized from the observed
                                        inode footprint — the result is a
                                        runnable spec closing the measure →
                                        characterize → regenerate loop
      --out <spec.json> write the fitted spec (runnable with uswg run)
      --json           machine-readable report with the spec embedded
      --since <µs>     keep records completing at or after this time
      --until <µs>     keep records completing at or before this time
      --sample <k>     decode every k-th selected frame (an estimate);
                       windowed flags seek via the index footer when the
                       capture has one, exactly as analyze
  uswg analyze <run.bin> [OPTIONS]      analyze a spill file (written by
                                        run --spill) without loading it into
                                        memory: op mix, access-size and
                                        response summaries
      --json           machine-readable JSON report instead of tables
      --by-type        add the per-user-type session breakdown
      --salvage        accept a truncated file: report over the intact
                       prefix with a warning, exit status 3 (corrupt
                       frames still fail closed, exit status 2); a file
                       whose only damage is a truncated index footer
                       reports exact totals from the streamed pass
      --since <µs>     keep records completing at or after this time
      --until <µs>     keep records completing at or before this time
      --sample <k>     decode every k-th selected frame (an estimate)
      --jobs <N>       fan frame ranges across N workers and merge
                       (indexed files; results match the sequential pass)
                       With an index footer (written by default since
                       schema 9), --since/--until/--sample/--jobs decode
                       only the overlapping frames — O(window), not
                       O(file); unindexed files fall back to a streamed
                       pass with the same record filter
  uswg tables                           print the Table 5.1/5.2/5.4 presets
  uswg help                             this message
";

/// Parses a model name into a configuration.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown names or bad server counts.
pub fn parse_model(name: &str) -> Result<ModelConfig, CliError> {
    if let Some(rest) = name.strip_prefix("distributed:") {
        let servers: usize = rest
            .parse()
            .map_err(|_| CliError::Usage(format!("bad server count `{rest}`")))?;
        if servers == 0 {
            return Err(CliError::Usage("server count must be positive".into()));
        }
        return Ok(ModelConfig::distributed_nfs(servers));
    }
    match name {
        "nfs" => Ok(ModelConfig::default_nfs()),
        "nfs-cached" => Ok(ModelConfig::Nfs(NfsParams::with_cache(8_192))),
        "local" => Ok(ModelConfig::default_local()),
        "whole-file" => Ok(ModelConfig::default_whole_file()),
        other => Err(CliError::Usage(format!(
            "unknown model `{other}` (expected nfs, nfs-cached, local, whole-file, distributed:<n>)"
        ))),
    }
}

/// Parses a scheduler-backend name.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown backends.
pub fn parse_scheduler(name: &str) -> Result<SchedulerBackend, CliError> {
    SchedulerBackend::parse(name).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown scheduler `{name}` (expected heap, calendar)"
        ))
    })
}

/// Parses a shard count (a positive integer).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for zero or non-numeric counts.
pub fn parse_shards(value: &str) -> Result<NonZeroUsize, CliError> {
    value
        .parse::<NonZeroUsize>()
        .map_err(|_| CliError::Usage(format!("bad shard count `{value}` (expected 1, 2, ...)")))
}

/// Parses a retention mode name.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown modes.
pub fn parse_mode(name: &str) -> Result<SweepMode, CliError> {
    match name {
        "summary" => Ok(SweepMode::Summary),
        "full-log" | "fulllog" | "full" => Ok(SweepMode::FullLog),
        other => Err(CliError::Usage(format!(
            "unknown mode `{other}` (expected summary, full-log)"
        ))),
    }
}

/// Parses a comma-separated list of values.
fn parse_list<T: std::str::FromStr>(what: &str, raw: &str) -> Result<Vec<T>, CliError> {
    let values: Result<Vec<T>, _> = raw.split(',').map(|v| v.trim().parse::<T>()).collect();
    match values {
        Ok(v) if !v.is_empty() => Ok(v),
        _ => Err(CliError::Usage(format!("bad {what} list `{raw}`"))),
    }
}

/// The `Parallelism` a `--jobs` flag selects.
fn parallelism_from_jobs(jobs: Option<usize>) -> Result<Parallelism, CliError> {
    match jobs {
        None => Ok(Parallelism::Auto),
        Some(0) => Err(CliError::Usage("--jobs must be at least 1".into())),
        Some(1) => Ok(Parallelism::Serial),
        Some(n) => Ok(Parallelism::Threads(n)),
    }
}

/// Largest accepted `--replicates` value: every seed becomes one full
/// simulation, so anything past this is a typo, and the bound keeps
/// `SeedSpec::resolve` from materializing an absurd seed vector.
const MAX_REPLICATES: u64 = 1_000_000;

/// Iterates an argument tail as `--flag value` pairs. Every flag of the
/// experiment subcommands takes exactly one value, so a trailing flag
/// yields an error for its missing value.
struct FlagPairs<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> FlagPairs<'a> {
    fn over(args: &'a [String]) -> Self {
        Self { args, i: 0 }
    }
}

impl<'a> Iterator for FlagPairs<'a> {
    type Item = (&'a str, Result<&'a str, CliError>);

    fn next(&mut self) -> Option<Self::Item> {
        let flag = self.args.get(self.i)?;
        let value = self
            .args
            .get(self.i + 1)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")));
        self.i += 2;
        Some((flag.as_str(), value))
    }
}

/// The flags `sweep` and `replicate` share, parsed once so the two
/// subcommands cannot drift apart in syntax or error wording.
#[derive(Debug, Default)]
struct ExperimentFlags {
    model: Option<ModelConfig>,
    mode: SweepMode,
    jobs: Option<usize>,
    scheduler: Option<SchedulerBackend>,
    shards: Option<NonZeroUsize>,
}

impl ExperimentFlags {
    /// Consumes a shared flag; returns `Ok(false)` for flags the caller
    /// owns (axes, seeds).
    fn try_consume(&mut self, flag: &str, value: &str) -> Result<bool, CliError> {
        match flag {
            "--model" => self.model = Some(parse_model(value)?),
            "--mode" => self.mode = parse_mode(value)?,
            "--jobs" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad job count `{value}`")))?;
                parallelism_from_jobs(Some(n))?; // reject 0 at parse time
                self.jobs = Some(n);
            }
            "--scheduler" => self.scheduler = Some(parse_scheduler(value)?),
            "--shards" => self.shards = Some(parse_shards(value)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn require_model(&self, command: &str) -> Result<ModelConfig, CliError> {
        self.model
            .clone()
            .ok_or_else(|| CliError::Usage(format!("{command} requires --model")))
    }
}

/// Parses a family selector.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown families or bad phase counts.
pub fn parse_family(name: &str) -> Result<Family, CliError> {
    if name == "exp" {
        return Ok(Family::Exponential);
    }
    for (prefix, ctor) in [
        ("phase:", Family::PhaseType as fn(usize) -> Family),
        ("gamma:", Family::Gamma as fn(usize) -> Family),
    ] {
        if let Some(rest) = name.strip_prefix(prefix) {
            let k: usize = rest
                .parse()
                .map_err(|_| CliError::Usage(format!("bad component count `{rest}`")))?;
            if k == 0 || k > 16 {
                return Err(CliError::Usage("component count must be 1-16".into()));
            }
            return Ok(ctor(k));
        }
    }
    Err(CliError::Usage(format!(
        "unknown family `{name}` (expected exp, phase:<K>, gamma:<K>)"
    )))
}

/// Parses a full argument list (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for malformed command lines.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let args: Vec<String> = args.into_iter().collect();
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "tables" => Ok(Command::Tables),
        "init" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("init needs a destination path".into()))?;
            Ok(Command::Init { path: path.clone() })
        }
        "fit" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("fit needs a data file or spill capture".into()))?
                .clone();
            let mut family = None;
            let mut out = None;
            let mut json = false;
            let mut since = None;
            let mut until = None;
            let mut sample = None;
            let mut i = 2;
            while i < args.len() {
                let flag = args[i].as_str();
                match flag {
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    "--family" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--family needs a value".into()))?;
                        family = Some(parse_family(v)?);
                        i += 2;
                    }
                    "--out" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--out needs a path".into()))?;
                        out = Some(v.clone());
                        i += 2;
                    }
                    "--since" | "--until" | "--sample" => {
                        let value = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
                        let parsed: u64 = value
                            .parse()
                            .map_err(|_| CliError::Usage(format!("bad {flag} value `{value}`")))?;
                        match flag {
                            "--since" => since = Some(parsed),
                            "--until" => until = Some(parsed),
                            _ => {
                                if parsed == 0 {
                                    return Err(CliError::Usage(
                                        "--sample must be at least 1".into(),
                                    ));
                                }
                                sample = Some(parsed);
                            }
                        }
                        i += 2;
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}`")));
                    }
                }
            }
            if let (Some(s), Some(u)) = (since, until) {
                if s > u {
                    return Err(CliError::Usage(format!(
                        "--since {s} is after --until {u}: empty window"
                    )));
                }
            }
            Ok(Command::Fit {
                path,
                family,
                out,
                json,
                since,
                until,
                sample,
            })
        }
        "analyze" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("analyze needs a spill file".into()))?
                .clone();
            let mut json = false;
            let mut by_type = false;
            let mut salvage = false;
            let mut since = None;
            let mut until = None;
            let mut sample = None;
            let mut jobs = None;
            let mut i = 2;
            while i < args.len() {
                let flag = args[i].as_str();
                match flag {
                    "--json" => json = true,
                    "--by-type" => by_type = true,
                    "--salvage" => salvage = true,
                    "--since" | "--until" | "--sample" | "--jobs" => {
                        i += 1;
                        let value = args
                            .get(i)
                            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?;
                        let parsed: u64 = value
                            .parse()
                            .map_err(|_| CliError::Usage(format!("bad {flag} value `{value}`")))?;
                        match flag {
                            "--since" => since = Some(parsed),
                            "--until" => until = Some(parsed),
                            "--sample" => {
                                if parsed == 0 {
                                    return Err(CliError::Usage(
                                        "--sample must be at least 1".into(),
                                    ));
                                }
                                sample = Some(parsed);
                            }
                            _ => {
                                if parsed == 0 {
                                    return Err(CliError::Usage(
                                        "--jobs must be at least 1".into(),
                                    ));
                                }
                                jobs = Some(parsed as usize);
                            }
                        }
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}`")));
                    }
                }
                i += 1;
            }
            if let (Some(s), Some(u)) = (since, until) {
                if s > u {
                    return Err(CliError::Usage(format!(
                        "--since {s} is after --until {u}: empty window"
                    )));
                }
            }
            Ok(Command::Analyze {
                path,
                json,
                by_type,
                salvage,
                since,
                until,
                sample,
                jobs,
            })
        }
        "drive" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("drive needs a spec file".into()))?
                .clone();
            let mut model = None;
            let mut from_spill = None;
            let mut speedup = 1.0f64;
            let mut max_in_flight = 4usize;
            let mut queue_cap = 1024usize;
            let mut deadline_micros = 0u64;
            let mut service_micros = 0u64;
            let mut fail_ppm = 0u32;
            fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
                value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad {flag} value `{value}`")))
            }
            for (flag, value) in FlagPairs::over(&args[2..]) {
                let value = value?;
                match flag {
                    "--model" => model = Some(parse_model(value)?),
                    "--from-spill" => from_spill = Some(value.to_string()),
                    "--speedup" => {
                        speedup = parse_num(flag, value)?;
                        if !(speedup > 0.0 && f64::is_finite(speedup)) {
                            return Err(CliError::Usage(
                                "--speedup must be finite and positive".into(),
                            ));
                        }
                    }
                    "--max-in-flight" => {
                        max_in_flight = parse_num(flag, value)?;
                        if max_in_flight == 0 {
                            return Err(CliError::Usage(
                                "--max-in-flight must be at least 1".into(),
                            ));
                        }
                    }
                    "--queue-cap" => {
                        queue_cap = parse_num(flag, value)?;
                        if queue_cap == 0 {
                            return Err(CliError::Usage("--queue-cap must be at least 1".into()));
                        }
                    }
                    "--deadline-us" => deadline_micros = parse_num(flag, value)?,
                    "--service-us" => service_micros = parse_num(flag, value)?,
                    "--fail-ppm" => {
                        fail_ppm = parse_num(flag, value)?;
                        if fail_ppm > 1_000_000 {
                            return Err(CliError::Usage(
                                "--fail-ppm is a parts-per-million rate (0..=1000000)".into(),
                            ));
                        }
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            match (&model, &from_spill) {
                (None, None) => {
                    return Err(CliError::Usage(
                        "drive requires --model (or --from-spill to replay a capture)".into(),
                    ));
                }
                (Some(_), Some(_)) => {
                    return Err(CliError::Usage(
                        "--from-spill replays a capture; drop --model".into(),
                    ));
                }
                _ => {}
            }
            Ok(Command::Drive {
                path,
                model,
                from_spill,
                speedup,
                max_in_flight,
                queue_cap,
                deadline_micros,
                service_micros,
                fail_ppm,
            })
        }
        "run" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("run needs a spec file".into()))?
                .clone();
            let mut model = None;
            let mut out = None;
            let mut scheduler = None;
            let mut spill = None;
            let mut shards = None;
            let mut users = None;
            let mut summary = false;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--model" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--model needs a value".into()))?;
                        model = Some(parse_model(v)?);
                        i += 2;
                    }
                    "--direct" => {
                        model = None;
                        i += 1;
                    }
                    "--out" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--out needs a path".into()))?;
                        out = Some(v.clone());
                        i += 2;
                    }
                    "--spill" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--spill needs a path".into()))?;
                        spill = Some(v.clone());
                        i += 2;
                    }
                    "--scheduler" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--scheduler needs a value".into()))?;
                        scheduler = Some(parse_scheduler(v)?);
                        i += 2;
                    }
                    "--shards" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--shards needs a value".into()))?;
                        shards = Some(parse_shards(v)?);
                        i += 2;
                    }
                    "--users" => {
                        let v = args
                            .get(i + 1)
                            .ok_or_else(|| CliError::Usage("--users needs a count".into()))?;
                        users = Some(v.parse::<NonZeroUsize>().map_err(|_| {
                            CliError::Usage(format!("--users needs a positive count, got `{v}`"))
                        })?);
                        i += 2;
                    }
                    "--summary" => {
                        summary = true;
                        i += 1;
                    }
                    other => {
                        return Err(CliError::Usage(format!("unknown flag `{other}`")));
                    }
                }
            }
            if spill.is_some() && model.is_none() {
                return Err(CliError::Usage(
                    "--spill needs a timing model (the direct driver does not stream)".into(),
                ));
            }
            if shards.is_some() && model.is_none() {
                return Err(CliError::Usage(
                    "--shards needs a timing model (the direct driver is single-instance)".into(),
                ));
            }
            if summary && model.is_none() {
                return Err(CliError::Usage(
                    "--summary needs a timing model (the direct driver materializes its log)"
                        .into(),
                ));
            }
            if summary && (out.is_some() || spill.is_some()) {
                return Err(CliError::Usage(
                    "--summary keeps no log, so --out/--spill have nothing to write".into(),
                ));
            }
            Ok(Command::Run {
                path,
                model,
                out,
                scheduler,
                spill,
                shards,
                users,
                summary,
            })
        }
        "sweep" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("sweep needs a spec file".into()))?
                .clone();
            let mut common = ExperimentFlags::default();
            let mut axis = None;
            let set_axis = |a: SweepAxis, axis: &mut Option<SweepAxis>| {
                if axis.is_some() {
                    return Err(CliError::Usage(
                        "sweep takes exactly one of --users, --mix, --sizes".into(),
                    ));
                }
                *axis = Some(a);
                Ok(())
            };
            for (flag, value) in FlagPairs::over(&args[2..]) {
                let (flag, value) = (flag, value?);
                if common.try_consume(flag, value)? {
                    continue;
                }
                match flag {
                    "--users" => {
                        set_axis(SweepAxis::Users(parse_list("user", value)?), &mut axis)?;
                    }
                    "--mix" => set_axis(SweepAxis::Mix(parse_list("mix", value)?), &mut axis)?,
                    "--sizes" => {
                        set_axis(SweepAxis::Sizes(parse_list("size", value)?), &mut axis)?;
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            let model = common.require_model("sweep")?;
            let axis = axis.ok_or_else(|| {
                CliError::Usage("sweep needs an axis: --users, --mix or --sizes".into())
            })?;
            Ok(Command::Sweep {
                path,
                model,
                axis,
                mode: common.mode,
                jobs: common.jobs,
                scheduler: common.scheduler,
                shards: common.shards,
            })
        }
        "replicate" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage("replicate needs a spec file".into()))?
                .clone();
            let mut common = ExperimentFlags::default();
            let mut seeds: Option<Vec<u64>> = None;
            let mut replicates: Option<u64> = None;
            for (flag, value) in FlagPairs::over(&args[2..]) {
                let (flag, value) = (flag, value?);
                if common.try_consume(flag, value)? {
                    continue;
                }
                match flag {
                    "--seeds" => seeds = Some(parse_list("seed", value)?),
                    "--replicates" => {
                        let n: u64 = value.parse().map_err(|_| {
                            CliError::Usage(format!("bad replicate count `{value}`"))
                        })?;
                        if n == 0 {
                            return Err(CliError::Usage("--replicates must be at least 1".into()));
                        }
                        if n > MAX_REPLICATES {
                            return Err(CliError::Usage(format!(
                                "--replicates is capped at {MAX_REPLICATES}"
                            )));
                        }
                        replicates = Some(n);
                    }
                    other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
                }
            }
            let model = common.require_model("replicate")?;
            if seeds.is_some() && replicates.is_some() {
                return Err(CliError::Usage(
                    "pass --seeds or --replicates, not both".into(),
                ));
            }
            let seeds = match (seeds, replicates) {
                (Some(list), _) => SeedSpec::List(list),
                (None, Some(n)) => SeedSpec::Count(n),
                (None, None) => SeedSpec::Count(5),
            };
            Ok(Command::Replicate {
                path,
                model,
                seeds,
                mode: common.mode,
                jobs: common.jobs,
                scheduler: common.scheduler,
                shards: common.shards,
            })
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Exit status of a successful command (everything is fine).
pub const EXIT_OK: i32 = 0;
/// Exit status of `analyze --salvage` over a truncated file: the report
/// covers the intact prefix only. (Hard failures exit 2 via `main`.)
pub const EXIT_SALVAGED: i32 = 3;

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Propagates I/O, parsing and simulation errors.
pub fn execute(command: Command) -> Result<String, CliError> {
    execute_with_status(command).map(|(text, _)| text)
}

/// Executes a parsed command, returning the text to print and the exit
/// status (`EXIT_OK`, or `EXIT_SALVAGED` for a salvaged analysis).
///
/// # Errors
///
/// Propagates I/O, parsing and simulation errors.
pub fn execute_with_status(command: Command) -> Result<(String, i32), CliError> {
    run_command(command)
}

fn ok(text: String) -> Result<(String, i32), CliError> {
    Ok((text, EXIT_OK))
}

fn run_command(command: Command) -> Result<(String, i32), CliError> {
    match command {
        Command::Help => ok(USAGE.to_string()),
        Command::Tables => ok(render_tables()),
        Command::Init { path } => {
            let spec = WorkloadSpec::paper_default()?;
            std::fs::write(&path, spec.to_json()?)?;
            ok(format!(
                "wrote the paper-default workload spec to {path}\n\
                 edit it, then: uswg run {path} --model nfs\n"
            ))
        }
        Command::Run {
            path,
            model,
            out,
            scheduler,
            spill,
            shards,
            users,
            summary: summary_only,
        } => {
            let mut spec = WorkloadSpec::from_json(&std::fs::read_to_string(&path)?)?;
            if let Some(backend) = scheduler {
                spec.run.scheduler = Some(backend);
            }
            if let Some(k) = shards {
                spec.run.shards = Some(k);
            }
            if let Some(n) = users {
                // Applied before the file system is generated, so the run is a
                // full-fidelity rescale of the spec, not a truncation of its log.
                spec.run.n_users = n.get();
            }
            if summary_only {
                // Headline numbers only: stream into the O(1) summary sink and
                // never materialize a usage log. This is the million-user smoke
                // path — resident memory is the user arenas plus the sink.
                // parse_args enforces this too, but Command is a public type —
                // keep execute total over hand-built values.
                let m = model.as_ref().ok_or_else(|| {
                    CliError::Usage(
                        "--summary needs a timing model (the direct driver materializes its log)"
                            .into(),
                    )
                })?;
                let (sink, stats) = spec.run_des_with_sink(m, SummarySink::new())?;
                let mut text = format!(
                    "model {} | {} events | {} simulated\n",
                    stats.model, stats.events, stats.duration
                );
                text.push_str(&render_summary_sink(&sink));
                return ok(text);
            }
            if let Some(spill_path) = spill {
                // Memory-flat full-fidelity run: records stream to disk
                // through the spill sink while a summary sink keeps the
                // headline numbers for the console.
                // parse_args enforces this too, but Command is a public
                // type — keep execute total over hand-built values.
                let m = model.as_ref().ok_or_else(|| {
                    CliError::Usage(
                        "--spill needs a timing model (the direct driver does not stream)".into(),
                    )
                })?;
                let sink = (SummarySink::new(), SpillSink::create(&spill_path)?);
                let ((summary, spill_sink), stats) = spec.run_des_with_sink(m, sink)?;
                spill_sink.finish()?;
                let mut text = format!(
                    "model {} | {} events | {} simulated\n",
                    stats.model, stats.events, stats.duration
                );
                if let Some(k) = spec.run.effective_shards() {
                    // Sharded capture stays memory-flat: each shard spills
                    // to its own temporary stream and the streams k-way
                    // merge frame-by-frame into the output file.
                    let _ = writeln!(
                        text,
                        "sharded run ({k} shard(s)): per-shard spill streams merged \
                         frame-by-frame, O(1) resident memory"
                    );
                }
                text.push_str(&render_summary_sink(&summary));
                let _ = writeln!(
                    text,
                    "binary log spilled to {spill_path} ({} ops, {} sessions)",
                    summary.ops, summary.sessions
                );
                if let Some(out_path) = out {
                    // The JSON form is reconstructed from the spill file, so
                    // even this path never holds the log *and* the run in
                    // memory at once.
                    let log = uswg_core::read_spill_path(&spill_path)?;
                    std::fs::write(&out_path, log.to_json().map_err(CoreError::from)?)?;
                    let _ = writeln!(text, "usage log written to {out_path}");
                }
                return ok(text);
            }
            let (log, header) = match &model {
                Some(m) => {
                    let report = spec.run_des(m)?;
                    let header = format!(
                        "model {} | {} events | {} simulated\n",
                        report.model, report.events, report.duration
                    );
                    (report.log, header)
                }
                None => {
                    let log = spec.run_direct()?;
                    (log, "direct driver (no timing model)\n".to_string())
                }
            };
            let mut text = header;
            text.push_str(&render_run_summary(&log, model.is_some()));
            if let Some(out_path) = out {
                std::fs::write(&out_path, log.to_json().map_err(CoreError::from)?)?;
                let _ = writeln!(text, "usage log written to {out_path}");
            }
            ok(text)
        }
        Command::Sweep {
            path,
            model,
            axis,
            mode,
            jobs,
            scheduler,
            shards,
        } => {
            let mut spec = WorkloadSpec::from_json(&std::fs::read_to_string(&path)?)?;
            if let Some(backend) = scheduler {
                spec.run.scheduler = Some(backend);
            }
            if let Some(k) = shards {
                spec.run.shards = Some(k);
            }
            // No jobs × shards clamp here: sweep workers and nested shard
            // workers lease threads from stealpool's one global budget, so
            // any request composes to at most the host's cores.
            let parallelism = parallelism_from_jobs(jobs)?;
            let (x_label, points) = match &axis {
                SweepAxis::Users(users) => (
                    "users",
                    user_sweep_with(&spec, &model, users.iter().copied(), parallelism, mode)?,
                ),
                SweepAxis::Mix(fractions) => (
                    "heavy frac",
                    mix_sweep_with(&spec, &model, fractions.iter().copied(), parallelism, mode)?,
                ),
                SweepAxis::Sizes(sizes) => (
                    "mean size",
                    access_size_sweep_with(
                        &spec,
                        &model,
                        sizes.iter().copied(),
                        parallelism,
                        mode,
                    )?,
                ),
            };
            ok(render_sweep(&model, x_label, &points, mode))
        }
        Command::Replicate {
            path,
            model,
            seeds,
            mode,
            jobs,
            scheduler,
            shards,
        } => {
            let mut spec = WorkloadSpec::from_json(&std::fs::read_to_string(&path)?)?;
            if let Some(backend) = scheduler {
                spec.run.scheduler = Some(backend);
            }
            if let Some(k) = shards {
                spec.run.shards = Some(k);
            }
            let parallelism = parallelism_from_jobs(jobs)?;
            let seeds = seeds.resolve(spec.run.seed);
            let study = run_des_replicated(&spec, &model, seeds, parallelism, mode)?;
            ok(render_replication(&model, &study))
        }
        Command::Fit {
            path,
            family,
            out,
            json,
            since,
            until,
            sample,
        } => {
            if is_spill_file(&path)? {
                if family.is_some() {
                    return Err(CliError::Usage(
                        "--family selects a family for text data; a spill capture fits \
                         every measure and picks families itself (drop --family)"
                            .into(),
                    ));
                }
                return fit_spill(&path, out.as_deref(), json, since, until, sample);
            }
            if out.is_some() || json || since.is_some() || until.is_some() || sample.is_some() {
                return Err(CliError::Usage(format!(
                    "--out/--json/--since/--until/--sample fit a spec from a spill capture, \
                     but {path} is not one (no spill magic)"
                )));
            }
            let family = family.ok_or_else(|| {
                CliError::Usage(
                    "fit on a text data file requires --family (spill captures fit every \
                     measure automatically)"
                        .into(),
                )
            })?;
            let data = read_data(&path)?;
            fit_report(&data, family).and_then(ok)
        }
        Command::Analyze {
            path,
            json,
            by_type,
            salvage,
            since,
            until,
            sample,
            jobs,
        } => {
            let opts = ScanOptions {
                since,
                until,
                sample,
                jobs: jobs.unwrap_or(1),
            };
            // `--jobs` alone parallelizes a full pass; only these flags
            // actually drop records, so only they can make a selection
            // empty.
            let filtered = since.is_some() || until.is_some() || sample.is_some();
            let windowed = filtered || jobs.is_some();
            // Any windowed/parallel flag tries the index footer first. A
            // present-but-malformed footer fails closed (`load_path` errors
            // — the trailer promised an index that lied); an absent or
            // truncated one returns `None` and the pass falls back to
            // streaming every frame through the same record filter.
            let index = if windowed {
                FrameIndex::load_path(&path)?
            } else {
                None
            };
            if let Some(index) = index {
                let codec = SpillReader::open(&path)?.codec();
                let outcome = scan::scan_indexed(&index, &opts, || SpillReader::open(&path))?;
                if filtered && outcome.stats.ops == 0 && outcome.stats.sessions == 0 {
                    return Err(CliError::Usage(format!(
                        "the requested window selects no records in {path} \
                         (widen --since/--until or drop --sample)"
                    )));
                }
                let coverage = Coverage::Indexed {
                    decoded: outcome.frames_decoded as u64,
                    total: outcome.frames_total as u64,
                };
                let text = if json {
                    render_analyze_json(&outcome.stats, codec, by_type, false, &coverage)?
                } else {
                    render_analyze_text(&path, &outcome.stats, codec, by_type, &coverage)
                };
                return ok(text);
            }
            // The streamed pass: every record flows through the aggregator
            // frame-by-frame — no UsageLog, no O(run length) memory, any
            // file the format can hold.
            let mut reader = SpillReader::open(&path)?;
            let codec = reader.codec();
            let mut stats = metrics::StreamLogStats::new();
            let mut truncated = false;
            for record in reader.by_ref() {
                match record {
                    Ok(record) => {
                        if opts.record_in_window(&record) {
                            match record {
                                SpillRecord::Op(op) => stats.record_op(&op),
                                SpillRecord::Session(s) => stats.record_session(&s),
                            }
                        }
                    }
                    // Salvage accepts *truncation* only: every record
                    // already yielded came from an intact (v2: checksummed)
                    // frame, so the prefix is trustworthy. Corruption
                    // (InvalidData) means a frame lied — fail closed, and
                    // that includes garbage after a valid end marker.
                    Err(e) if salvage && e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        truncated = true;
                        break;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            if filtered && stats.ops == 0 && stats.sessions == 0 {
                return Err(CliError::Usage(format!(
                    "the requested window selects no records in {path} \
                     (widen --since/--until or drop --sample)"
                )));
            }
            // A cut inside the index footer leaves the record stream
            // complete (the end marker validated) — exact totals, unlike a
            // mid-stream cut where they are a lower bound.
            let footer_only = truncated && reader.stream_complete();
            let coverage = if windowed {
                Coverage::Filtered
            } else {
                Coverage::Full
            };
            let mut text = if json {
                render_analyze_json(&stats, codec, by_type, truncated, &coverage)?
            } else {
                render_analyze_text(&path, &stats, codec, by_type, &coverage)
            };
            if truncated {
                if !json {
                    if footer_only {
                        let _ = writeln!(
                            text,
                            "warning: index footer is truncated — report streamed from \
                             the complete record stream; totals are exact"
                        );
                    } else {
                        let _ = writeln!(
                            text,
                            "warning: spill file is truncated — salvaged {} ops and {} \
                             sessions from the intact frame prefix; totals are a lower bound",
                            stats.ops, stats.sessions
                        );
                    }
                }
                return Ok((text, EXIT_SALVAGED));
            }
            ok(text)
        }
        Command::Drive {
            path,
            model,
            from_spill,
            speedup,
            max_in_flight,
            queue_cap,
            deadline_micros,
            service_micros,
            fail_ppm,
        } => {
            // Stream the op source into the pacer — a live DES run on a
            // producer thread, or a spill capture — so resident memory is
            // bounded by the drive queue, never by the run length.
            let spec = WorkloadSpec::from_json(&std::fs::read_to_string(&path)?)?;
            let config = uswg_drive::DriveConfig {
                speedup,
                max_in_flight,
                queue_cap,
                deadline_micros,
                // The same deterministic policy the simulator's fault
                // injection uses, straight from the spec.
                retry: spec.run.faults.retry,
                seed: spec.run.seed,
            };
            let target = Arc::new(uswg_drive::LoopbackVfs::new(uswg_drive::LoopbackConfig {
                service_micros,
                fail_ppm,
                seed: spec.run.seed,
                ..uswg_drive::LoopbackConfig::default()
            }));
            let mut text;
            // Stats from the DES producer, filled in by the finish hook
            // once the channel closes (None on the capture path).
            let producer_stats = Arc::new(Mutex::new(None));
            let outcome = match &from_spill {
                Some(capture) => {
                    text = format!(
                        "streaming capture {capture} | replaying open-loop at {speedup}x: \
                         max in-flight {max_in_flight}, queue cap {queue_cap} (shed-oldest)\n",
                    );
                    let source = uswg_drive::SpillSource::open(capture)?;
                    uswg_drive::drive_stream(source, target, &config)
                }
                None => {
                    let model = model.expect("parse_args requires a model without --from-spill");
                    text = format!(
                        "streaming DES ops (model {}) through a {queue_cap}-record channel | \
                         replaying open-loop at {speedup}x: max in-flight {max_in_flight}, \
                         queue cap {queue_cap} (shed-oldest)\n",
                        model.name(),
                    );
                    // Channel capacity = queue capacity: the producer
                    // blocks once the pacer falls a queue behind, so the
                    // two sides hold O(queue) records between them.
                    let (rx, handle) = spec.stream_des_ops(&model, queue_cap).into_parts();
                    let stats_slot = Arc::clone(&producer_stats);
                    let source = uswg_drive::ChannelSource::new(rx).on_finish(Box::new(
                        move || match handle.join() {
                            Ok(Ok(stats)) => {
                                *stats_slot.lock().expect("stats poisoned") = Some(stats);
                                Ok(())
                            }
                            Ok(Err(e)) => {
                                Err(uswg_drive::SourceError(format!("DES producer: {e}")))
                            }
                            Err(_) => Err(uswg_drive::SourceError(
                                "DES producer thread panicked".into(),
                            )),
                        },
                    ));
                    uswg_drive::drive_stream(source, target, &config)
                }
            };
            if let Some(stats) = producer_stats.lock().expect("stats poisoned").take() {
                let _ = writeln!(
                    text,
                    "generated stream: {} simulated, {} kernel events (model {})",
                    stats.duration, stats.events, stats.model,
                );
            }
            match outcome {
                Ok(drive_report) => {
                    text.push_str(&drive_report.render());
                    ok(text)
                }
                Err(uswg_drive::DriveError::Source { message, report }) => {
                    // Same salvage convention as `analyze`: report what
                    // drained, warn, and exit 3 instead of failing dry.
                    text.push_str(&report.render());
                    let _ = writeln!(
                        text,
                        "warning: op source ended early ({message}); the report covers \
                         the {} ops offered before the failure",
                        report.offered
                    );
                    Ok((text, EXIT_SALVAGED))
                }
                Err(e) => Err(e.into()),
            }
        }
    }
}

/// The human-readable name of a spill codec.
fn codec_name(codec: SpillCodec) -> &'static str {
    match codec {
        SpillCodec::Raw => "v1 raw",
        SpillCodec::Compressed => "v2 compressed",
    }
}

/// How much of the file an analyze pass decoded, for the report.
#[derive(Debug, Clone, Copy)]
enum Coverage {
    /// Streamed every frame, no filter — the classic full pass, whose
    /// report stays byte-identical to pre-index releases.
    Full,
    /// Streamed every frame but filtered records to the window (the file
    /// carries no usable index footer).
    Filtered,
    /// Seeked via the index footer and decoded only the selected frames.
    Indexed { decoded: u64, total: u64 },
}

fn render_analyze_text(
    path: &str,
    stats: &metrics::StreamLogStats,
    codec: SpillCodec,
    by_type: bool,
    coverage: &Coverage,
) -> String {
    let mut text = format!(
        "spill file {path} ({}): {} ops, {} sessions\n",
        codec_name(codec),
        stats.ops,
        stats.sessions
    );
    match coverage {
        Coverage::Full => {}
        Coverage::Filtered => {
            text.push_str("no index footer — streamed every frame, filtered to the window\n");
        }
        Coverage::Indexed { decoded, total } => {
            let _ = writeln!(text, "frame index: decoded {decoded} of {total} frames");
        }
    }
    let mut table = Table::new(vec![
        "system call",
        "count",
        "access size (B)",
        "response (µs)",
    ])
    .with_title("Per-system-call summary");
    for row in stats.op_kind_summaries() {
        table.row(vec![
            row.kind.to_string(),
            row.count.to_string(),
            row.access_size.mean_std(),
            row.response.mean_std(),
        ]);
    }
    text.push_str(&table.render());
    let (sizes, responses) = stats.data_op_summary();
    let _ = writeln!(
        text,
        "data ops: {} | access size {} B | response {} µs",
        sizes.n,
        sizes.mean_std(),
        responses.mean_std()
    );
    let _ = writeln!(
        text,
        "response time per byte: {:.3} µs/B | sessions: {}",
        stats.response_per_byte(),
        stats.sessions
    );
    // Fault outcomes print only when present, so fault-free reports stay
    // byte-identical to what they were before fault injection existed.
    if stats.retries > 0 || stats.aborted_ops > 0 {
        let _ = writeln!(
            text,
            "faults: {} retries | {} aborted ops ({:.2}% abort rate) | \
             goodput {} of {} data bytes",
            stats.retries,
            stats.aborted_ops,
            stats.abort_rate() * 100.0,
            stats.goodput_bytes(),
            stats.data_bytes
        );
    }
    if by_type {
        let mut table = Table::new(vec![
            "user type",
            "sessions",
            "ops",
            "bytes accessed",
            "resp/byte (µs/B)",
        ])
        .with_title("Per-user-type summary");
        for (type_idx, t) in stats.user_types() {
            table.row(vec![
                type_idx.to_string(),
                t.sessions.to_string(),
                t.ops.to_string(),
                t.bytes_accessed.to_string(),
                format!("{:.3}", t.response_per_byte()),
            ]);
        }
        text.push_str(&table.render());
    }
    text
}

/// The JSON shape of one `analyze` report row per op kind.
#[derive(Debug, Serialize)]
struct OpMixRow {
    op: String,
    count: usize,
    access_size: Summary,
    response: Summary,
}

/// The JSON shape of one per-user-type row.
#[derive(Debug, Serialize)]
struct UserTypeRow {
    user_type: usize,
    sessions: u64,
    ops: u64,
    bytes_accessed: u64,
    total_response_us: u64,
    response_per_byte: f64,
}

/// The machine-readable `analyze --json` report.
#[derive(Debug, Serialize)]
struct AnalyzeReport {
    format: String,
    ops: u64,
    sessions: u64,
    response_per_byte: f64,
    /// Transiently failed attempts that were retried (0 for fault-free
    /// runs and for spill files written before fault injection existed).
    retries: u64,
    /// Operations that exhausted their retry budget.
    aborted_ops: u64,
    /// Aborted ops / all ops.
    abort_rate: f64,
    /// Data bytes excluding aborted transfers (vs `data_bytes` offered).
    goodput_bytes: u64,
    /// Data bytes offered, aborted transfers included.
    data_bytes: u64,
    /// True when `--salvage` accepted a truncated file: every count is a
    /// lower bound over the intact frame prefix (exact if only the index
    /// footer was cut — the record stream itself validated).
    salvaged: bool,
    /// True when the pass seeked via the index footer instead of
    /// streaming the whole file.
    indexed: bool,
    /// Frames decoded (`null` for a full streamed pass).
    frames_decoded: Option<u64>,
    /// Frames in the file per the index (`null` when unindexed).
    frames_total: Option<u64>,
    data_access_size: Summary,
    data_response: Summary,
    op_mix: Vec<OpMixRow>,
    /// `null` unless `--by-type` was passed (the vendored serde derive has
    /// no `skip_serializing_if`).
    user_types: Option<Vec<UserTypeRow>>,
}

fn render_analyze_json(
    stats: &metrics::StreamLogStats,
    codec: SpillCodec,
    by_type: bool,
    salvaged: bool,
    coverage: &Coverage,
) -> Result<String, CliError> {
    let (data_access_size, data_response) = stats.data_op_summary();
    let (indexed, frames_decoded, frames_total) = match coverage {
        Coverage::Full | Coverage::Filtered => (false, None, None),
        Coverage::Indexed { decoded, total } => (true, Some(*decoded), Some(*total)),
    };
    let report = AnalyzeReport {
        format: codec_name(codec).to_string(),
        ops: stats.ops,
        sessions: stats.sessions,
        response_per_byte: stats.response_per_byte(),
        retries: stats.retries,
        aborted_ops: stats.aborted_ops,
        abort_rate: stats.abort_rate(),
        goodput_bytes: stats.goodput_bytes(),
        data_bytes: stats.data_bytes,
        salvaged,
        indexed,
        frames_decoded,
        frames_total,
        data_access_size,
        data_response,
        op_mix: stats
            .op_kind_summaries()
            .into_iter()
            .map(|row| OpMixRow {
                op: row.kind.to_string(),
                count: row.count,
                access_size: row.access_size,
                response: row.response,
            })
            .collect(),
        user_types: by_type.then(|| {
            stats
                .user_types()
                .iter()
                .map(|(&user_type, t)| UserTypeRow {
                    user_type,
                    sessions: t.sessions,
                    ops: t.ops,
                    bytes_accessed: t.bytes_accessed,
                    total_response_us: t.total_response_us,
                    response_per_byte: t.response_per_byte(),
                })
                .collect()
        }),
    };
    let mut text = serde_json::to_string_pretty(&report).map_err(CoreError::from)?;
    text.push('\n');
    Ok(text)
}

fn render_sweep(
    model: &ModelConfig,
    x_label: &str,
    points: &[SweepPoint],
    mode: SweepMode,
) -> String {
    let mut table = Table::new(vec![
        x_label,
        "resp/byte (µs/B)",
        "access size (B)",
        "response (µs)",
        "sessions",
    ])
    .with_title(format!("Sweep — model {}", model.name()));
    for p in points {
        table.row(vec![
            format!("{}", p.x),
            format!("{:.3}", p.response_per_byte),
            p.access_size.mean_std(),
            p.response.mean_std(),
            p.sessions.to_string(),
        ]);
    }
    let mut text = table.render();
    let _ = writeln!(
        text,
        "mode: {} ({})",
        match mode {
            SweepMode::Summary => "summary",
            SweepMode::FullLog => "full-log",
        },
        match mode {
            SweepMode::Summary => "O(1) memory per point",
            SweepMode::FullLog => "full usage log materialized per point",
        }
    );
    text
}

fn render_summary_sink(sink: &SummarySink) -> String {
    let mut text = String::new();
    let _ = writeln!(
        text,
        "data ops: {} | access size {:.1} ± {:.1} B | response {:.1} ± {:.1} µs",
        sink.data_ops,
        sink.mean_access_size(),
        sink.std_dev_access_size(),
        sink.mean_response(),
        sink.std_dev_response(),
    );
    let _ = writeln!(
        text,
        "response time per byte: {:.3} µs/B | sessions: {}",
        sink.response_per_byte(),
        sink.sessions
    );
    text
}

fn render_replication(
    model: &ModelConfig,
    study: &uswg_core::experiment::ReplicationStudy,
) -> String {
    let mut table = Table::new(vec!["seed", "resp/byte (µs/B)", "data ops", "sessions"])
        .with_title(format!("Replication study — model {}", model.name()));
    for r in &study.replicates {
        table.row(vec![
            r.seed.to_string(),
            format!("{:.3}", r.point.response_per_byte),
            r.point.response.n.to_string(),
            r.point.sessions.to_string(),
        ]);
    }
    let mut text = table.render();
    let _ = writeln!(
        text,
        "mean response/byte: {:.3} ± {:.3} µs/B (95% CI half-width {:.3}, {} seeds)",
        study.mean_response_per_byte,
        study.std_dev_response_per_byte,
        study.ci95_half_width,
        study.replicates.len(),
    );
    let _ = writeln!(
        text,
        "pooled over all seeds: access size {} B | response {} µs",
        study.pooled_access_size.mean_std(),
        study.pooled_response.mean_std(),
    );
    text
}

fn read_data(path: &str) -> Result<Vec<f64>, CliError> {
    let raw = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (lineno, line) in raw.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v: f64 = line.parse().map_err(|_| {
            CliError::Usage(format!("{path}:{}: not a number: `{line}`", lineno + 1))
        })?;
        out.push(v);
    }
    if out.len() < 2 {
        return Err(CliError::Usage(format!(
            "{path}: need at least 2 data points"
        )));
    }
    Ok(out)
}

fn fit_report(data: &[f64], family: Family) -> Result<String, CliError> {
    let dist: Box<dyn Distribution> = match family {
        Family::Exponential => Box::new(fit::fit_exponential(data)?),
        Family::PhaseType(k) => Box::new(fit::fit_phase_type(data, k)?),
        Family::Gamma(k) => Box::new(fit::fit_multi_stage_gamma(data, k)?),
    };
    let ks = gof::ks_statistic(data, &*dist)?;
    let mut text = format!(
        "fitted {family:?}: mean {:.3}, std {:.3}\nKS D = {:.4} (p = {:.4})\n",
        dist.mean(),
        dist.std_dev(),
        ks.statistic,
        ks.p_value
    );
    if data.len() >= 100 {
        let chi = gof::chi_square(data, &*dist, 20)?;
        let _ = writeln!(
            text,
            "chi-square = {:.1} ({} dof, p = {:.4})",
            chi.statistic, chi.degrees_of_freedom, chi.p_value
        );
    }
    let hi = dist.quantile(0.999);
    text.push_str(&plot::plot_pdf(&*dist, dist.support_min(), hi, 64, 10));
    Ok(text)
}

/// Whether `path` starts with the spill magic (`USWGSPL1`/`USWGSPL2`) —
/// how `fit` tells a binary capture from a text data file. A file too
/// short to hold the magic is not a capture.
fn is_spill_file(path: &str) -> Result<bool, CliError> {
    use std::io::Read as _;
    let mut magic = [0u8; 7];
    match std::fs::File::open(path)?.read_exact(&mut magic) {
        Ok(()) => Ok(&magic == b"USWGSPL"),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e.into()),
    }
}

/// The machine-readable `fit <capture> --json` report.
#[derive(Debug, Serialize)]
struct FitSpillReport {
    /// Op records classified to a user type.
    ops: u64,
    /// Op records whose user completed no session in the window.
    ops_unclassified: u64,
    sessions: u64,
    users: u64,
    user_types: u64,
    /// Frames decoded per pass (`null` for a full streamed pass).
    frames_decoded: Option<u64>,
    /// Frames in the file per the index (`null` when unindexed).
    frames_total: Option<u64>,
    /// Per-measure model choices, in emission order.
    fits: Vec<MeasureFit>,
    /// Every fallback taken where the capture was too thin to fit.
    warnings: Vec<String>,
    /// The complete runnable spec.
    spec: WorkloadSpec,
}

/// `fit` over a spill capture: stream it through the fit collector
/// (windowed via the index footer exactly as `analyze`), model every
/// measure, and emit the synthesized runnable spec.
fn fit_spill(
    path: &str,
    out: Option<&str>,
    json: bool,
    since: Option<u64>,
    until: Option<u64>,
    sample: Option<u64>,
) -> Result<(String, i32), CliError> {
    let opts = ScanOptions {
        since,
        until,
        sample,
        jobs: 1,
    };
    let outcome = collect_fit(path, &opts)?;
    if outcome.observation.is_empty() {
        return Err(CliError::Usage(format!(
            "the requested window selects no records in {path} — nothing to fit \
             (widen --since/--until or drop --sample)"
        )));
    }
    let synthesized = synthesize_spec(&outcome.observation, &SynthesisOptions::default())?;
    let spec_json = synthesized.spec.to_json()?;
    if let Some(out_path) = out {
        std::fs::write(out_path, &spec_json)?;
    }
    let obs = &outcome.observation;
    if json {
        let report = FitSpillReport {
            ops: obs.ops,
            ops_unclassified: obs.ops_unclassified,
            sessions: obs.sessions,
            users: obs.users as u64,
            user_types: obs.types.len() as u64,
            frames_decoded: outcome.frames_decoded.map(|n| n as u64),
            frames_total: outcome.frames_total.map(|n| n as u64),
            fits: synthesized.fits,
            warnings: synthesized.warnings,
            spec: synthesized.spec,
        };
        let mut text = serde_json::to_string_pretty(&report).map_err(CoreError::from)?;
        text.push('\n');
        return ok(text);
    }
    let mut text = format!(
        "fit of spill capture {path}: {} ops over {} sessions, {} users, {} user type(s)\n",
        obs.ops,
        obs.sessions,
        obs.users,
        obs.types.len()
    );
    if let (Some(decoded), Some(total)) = (outcome.frames_decoded, outcome.frames_total) {
        let _ = writeln!(text, "frame index: decoded {decoded} of {total} frames");
    }
    let mut table = Table::new(vec!["measure", "family", "samples", "KS D", "p"])
        .with_title("Fitted distributions");
    for f in &synthesized.fits {
        let (d, p) = match &f.ks {
            Some(ks) => (format!("{:.4}", ks.statistic), format!("{:.4}", ks.p_value)),
            None => ("-".into(), "-".into()),
        };
        table.row(vec![
            f.measure.clone(),
            f.family.clone(),
            format!("{}/{}", f.fitted, f.seen),
            d,
            p,
        ]);
    }
    text.push_str(&table.render());
    for w in &synthesized.warnings {
        let _ = writeln!(text, "warning: {w}");
    }
    match out {
        Some(out_path) => {
            let _ = writeln!(
                text,
                "fitted spec written to {out_path} — run it with: uswg run {out_path} --model nfs"
            );
        }
        None => {
            text.push_str("pass --out <spec.json> to write the runnable spec\n");
        }
    }
    ok(text)
}

fn render_run_summary(log: &UsageLog, with_model: bool) -> String {
    let mut table = Table::new(vec![
        "system call",
        "count",
        "access size (B)",
        "response (µs)",
    ])
    .with_title("Per-system-call summary");
    for row in metrics::op_kind_summaries(log) {
        table.row(vec![
            row.kind.to_string(),
            row.count.to_string(),
            row.access_size.mean_std(),
            row.response.mean_std(),
        ]);
    }
    let mut text = table.render();
    let _ = writeln!(text, "sessions: {}", log.sessions().len());
    if with_model {
        let _ = writeln!(
            text,
            "response time per byte: {:.3} µs/B",
            metrics::response_time_per_byte(log)
        );
    }
    text
}

fn render_tables() -> String {
    let mut text = String::new();
    let mut t1 = Table::new(vec!["category", "mean size (B)", "% of files"])
        .with_title("Table 5.1: file characterization");
    for &(cat, size, pct) in presets::TABLE_5_1.iter() {
        t1.row(vec![
            cat.to_string(),
            format!("{size:.0}"),
            format!("{pct:.1}"),
        ]);
    }
    text.push_str(&t1.render());
    text.push('\n');
    let mut t2 = Table::new(vec![
        "category",
        "accesses/byte",
        "file size",
        "files",
        "% users",
    ])
    .with_title("Table 5.2: user characterization");
    for &(cat, apb, size, files, pct) in presets::TABLE_5_2.iter() {
        t2.row(vec![
            cat.to_string(),
            format!("{apb:.3}"),
            format!("{size:.0}"),
            format!("{files:.1}"),
            format!("{pct:.0}"),
        ]);
    }
    text.push_str(&t2.render());
    text.push('\n');
    let mut t4 = Table::new(vec!["user type", "think time (µs)"])
        .with_title("Table 5.4: simulated user types");
    for (name, think) in [
        ("extremely heavy I/O", presets::THINK_EXTREMELY_HEAVY),
        ("heavy I/O", presets::THINK_HEAVY),
        ("light I/O", presets::THINK_LIGHT),
    ] {
        t4.row(vec![name.to_string(), format!("{think:.0}")]);
    }
    text.push_str(&t4.render());
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_help_and_tables() {
        assert_eq!(parse_args(argv("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(Vec::new()).unwrap(), Command::Help);
        assert_eq!(parse_args(argv("tables")).unwrap(), Command::Tables);
    }

    #[test]
    fn parses_run_variants() {
        let cmd = parse_args(argv("run spec.json --model nfs --out log.json")).unwrap();
        match cmd {
            Command::Run {
                path,
                model,
                out,
                scheduler,
                spill,
                shards,
                users,
                summary,
            } => {
                assert_eq!(path, "spec.json");
                assert_eq!(model.unwrap().name(), "nfs");
                assert_eq!(out.as_deref(), Some("log.json"));
                assert_eq!(scheduler, None);
                assert_eq!(spill, None);
                assert_eq!(shards, None);
                assert_eq!(users, None);
                assert!(!summary);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("run spec.json --model nfs --summary --users 1000000")).unwrap();
        match cmd {
            Command::Run { users, summary, .. } => {
                assert_eq!(users, NonZeroUsize::new(1_000_000));
                assert!(summary);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("run spec.json --model nfs --shards 4")).unwrap();
        match cmd {
            Command::Run { shards, .. } => {
                assert_eq!(shards, Some(NonZeroUsize::new(4).unwrap()));
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("run spec.json --model nfs --spill log.bin")).unwrap();
        match cmd {
            Command::Run { spill, .. } => assert_eq!(spill.as_deref(), Some("log.bin")),
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("run spec.json --direct")).unwrap();
        assert!(matches!(cmd, Command::Run { model: None, .. }));
        let cmd = parse_args(argv("run spec.json --model distributed:3")).unwrap();
        match cmd {
            Command::Run { model: Some(m), .. } => assert_eq!(m.name(), "distributed-nfs"),
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("run spec.json --scheduler calendar")).unwrap();
        match cmd {
            Command::Run { scheduler, .. } => {
                assert_eq!(scheduler, Some(SchedulerBackend::Calendar));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(argv("run")).is_err());
        assert!(parse_args(argv("run spec.json --model warp-drive")).is_err());
        assert!(parse_args(argv("run spec.json --scheduler splay")).is_err());
        assert!(parse_args(argv("run spec.json --scheduler")).is_err());
        assert!(parse_args(argv("run spec.json --bogus")).is_err());
        assert!(parse_args(argv("frobnicate")).is_err());
        // Fit flag validation: values must parse, the window must be
        // non-empty, and sampling every 0th frame is meaningless.
        assert!(parse_args(argv("fit data.txt --family")).is_err());
        assert!(parse_args(argv("fit data.txt --bogus")).is_err());
        assert!(parse_args(argv("fit cap.bin --sample 0")).is_err());
        assert!(parse_args(argv("fit cap.bin --since ten")).is_err());
        assert!(parse_args(argv("fit cap.bin --since 10 --until 5")).is_err());
        assert!(parse_args(argv("fit cap.bin --out")).is_err());
        // Analyze needs a path and rejects flags it doesn't know.
        assert!(parse_args(argv("analyze")).is_err());
        assert!(parse_args(argv("analyze run.bin --frobnicate")).is_err());
        assert!(parse_model("distributed:0").is_err());
        assert!(parse_family("phase:0").is_err());
        assert!(parse_family("phase:99").is_err());
        assert!(parse_family("cauchy").is_err());
        // The spill path needs a timing model to stream from.
        assert!(parse_args(argv("run spec.json --spill log.bin")).is_err());
        assert!(parse_args(argv("run spec.json --direct --spill log.bin")).is_err());
        // Summary mode streams through the DES, so it also needs a model,
        // and it keeps no log for --out/--spill to write.
        assert!(parse_args(argv("run spec.json --summary")).is_err());
        assert!(parse_args(argv("run spec.json --model nfs --summary --out log.json")).is_err());
        assert!(parse_args(argv("run spec.json --model nfs --summary --spill log.bin")).is_err());
        // The population override must be a positive count.
        assert!(parse_args(argv("run spec.json --users 0")).is_err());
        assert!(parse_args(argv("run spec.json --users many")).is_err());
        assert!(parse_args(argv("run spec.json --users")).is_err());
        // Sharding is a DES-driver feature: no model, no shards; and the
        // count must be a positive integer.
        assert!(parse_args(argv("run spec.json --shards 2")).is_err());
        assert!(parse_args(argv("run spec.json --model nfs --shards 0")).is_err());
        assert!(parse_args(argv("run spec.json --model nfs --shards lots")).is_err());
        assert!(parse_args(argv("sweep spec.json --model nfs --users 1 --shards 0")).is_err());
        // Sweep needs a model and exactly one axis.
        assert!(parse_args(argv("sweep spec.json --users 1,2")).is_err());
        assert!(parse_args(argv("sweep spec.json --model nfs")).is_err());
        assert!(parse_args(argv("sweep spec.json --model nfs --users 1 --mix 0.5")).is_err());
        assert!(parse_args(argv("sweep spec.json --model nfs --users banana")).is_err());
        assert!(parse_args(argv("sweep spec.json --model nfs --users 1,2 --mode lossy")).is_err());
        assert!(parse_args(argv("sweep spec.json --model nfs --users 1,2 --jobs 0")).is_err());
        // Replicate seed plumbing.
        assert!(parse_args(argv("replicate spec.json")).is_err());
        assert!(parse_args(argv("replicate spec.json --model nfs --replicates 0")).is_err());
        // Absurd counts are rejected at parse time, before SeedSpec would
        // materialize the seed vector.
        assert!(parse_args(argv(
            "replicate spec.json --model nfs --replicates 18446744073709551615"
        ))
        .is_err());
        assert!(parse_args(argv(
            "replicate spec.json --model nfs --seeds 1 --replicates 2"
        ))
        .is_err());
    }

    #[test]
    fn parses_sweep_and_replicate() {
        let cmd = parse_args(argv(
            "sweep spec.json --model nfs --users 1,2,4 --mode full-log --jobs 2 --scheduler calendar --shards 2",
        ))
        .unwrap();
        match cmd {
            Command::Sweep {
                path,
                model,
                axis,
                mode,
                jobs,
                scheduler,
                shards,
            } => {
                assert_eq!(path, "spec.json");
                assert_eq!(model.name(), "nfs");
                assert_eq!(axis, SweepAxis::Users(vec![1, 2, 4]));
                assert_eq!(mode, SweepMode::FullLog);
                assert_eq!(jobs, Some(2));
                assert_eq!(scheduler, Some(SchedulerBackend::Calendar));
                assert_eq!(shards, Some(NonZeroUsize::new(2).unwrap()));
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("sweep spec.json --model local --mix 0,0.5,1")).unwrap();
        match cmd {
            Command::Sweep { axis, mode, .. } => {
                assert_eq!(axis, SweepAxis::Mix(vec![0.0, 0.5, 1.0]));
                assert_eq!(mode, SweepMode::Summary);
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("sweep spec.json --model local --sizes 128,2048")).unwrap();
        assert!(matches!(
            cmd,
            Command::Sweep {
                axis: SweepAxis::Sizes(_),
                ..
            }
        ));
        let cmd = parse_args(argv("replicate spec.json --model nfs --seeds 7,8,9")).unwrap();
        match cmd {
            Command::Replicate { seeds, .. } => {
                assert_eq!(seeds, SeedSpec::List(vec![7, 8, 9]));
            }
            other => panic!("{other:?}"),
        }
        let cmd = parse_args(argv("replicate spec.json --model nfs --replicates 3")).unwrap();
        match cmd {
            Command::Replicate { seeds, .. } => {
                assert_eq!(seeds, SeedSpec::Count(3));
                assert_eq!(seeds.resolve(100), vec![100, 101, 102]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_analyze() {
        assert_eq!(
            parse_args(argv("analyze run.bin")).unwrap(),
            Command::Analyze {
                path: "run.bin".into(),
                json: false,
                by_type: false,
                salvage: false,
                since: None,
                until: None,
                sample: None,
                jobs: None,
            }
        );
        assert_eq!(
            parse_args(argv(
                "analyze run.bin --json --by-type --salvage --since 100 \
                 --until 900 --sample 10 --jobs 4"
            ))
            .unwrap(),
            Command::Analyze {
                path: "run.bin".into(),
                json: true,
                by_type: true,
                salvage: true,
                since: Some(100),
                until: Some(900),
                sample: Some(10),
                jobs: Some(4),
            }
        );
        // Windowed flags validate their values.
        assert!(parse_args(argv("analyze run.bin --since")).is_err());
        assert!(parse_args(argv("analyze run.bin --since later")).is_err());
        assert!(parse_args(argv("analyze run.bin --sample 0")).is_err());
        assert!(parse_args(argv("analyze run.bin --jobs 0")).is_err());
        assert!(parse_args(argv("analyze run.bin --since 10 --until 5")).is_err());
    }

    #[test]
    fn parses_drive() {
        let cmd = parse_args(argv(
            "drive spec.json --model nfs --speedup 100 --max-in-flight 8 \
             --queue-cap 64 --deadline-us 5000 --service-us 200 --fail-ppm 1000",
        ))
        .unwrap();
        match cmd {
            Command::Drive {
                path,
                model,
                from_spill,
                speedup,
                max_in_flight,
                queue_cap,
                deadline_micros,
                service_micros,
                fail_ppm,
            } => {
                assert_eq!(path, "spec.json");
                assert_eq!(model.unwrap().name(), "nfs");
                assert_eq!(from_spill, None);
                assert_eq!(speedup, 100.0);
                assert_eq!(max_in_flight, 8);
                assert_eq!(queue_cap, 64);
                assert_eq!(deadline_micros, 5000);
                assert_eq!(service_micros, 200);
                assert_eq!(fail_ppm, 1000);
            }
            other => panic!("{other:?}"),
        }
        // Defaults.
        let cmd = parse_args(argv("drive spec.json --model local")).unwrap();
        match cmd {
            Command::Drive {
                speedup,
                max_in_flight,
                queue_cap,
                deadline_micros,
                ..
            } => {
                assert_eq!(speedup, 1.0);
                assert_eq!(max_in_flight, 4);
                assert_eq!(queue_cap, 1024);
                assert_eq!(deadline_micros, 0);
            }
            other => panic!("{other:?}"),
        }
        // A capture replay needs no model.
        let cmd = parse_args(argv("drive spec.json --from-spill cap.bin")).unwrap();
        match cmd {
            Command::Drive {
                model, from_spill, ..
            } => {
                assert_eq!(model, None);
                assert_eq!(from_spill.as_deref(), Some("cap.bin"));
            }
            other => panic!("{other:?}"),
        }
        // Rejections.
        assert!(parse_args(argv("drive")).is_err());
        assert!(parse_args(argv("drive spec.json")).is_err());
        // A capture already fixes the op stream — a model is contradictory.
        assert!(parse_args(argv("drive spec.json --model nfs --from-spill cap.bin")).is_err());
        assert!(parse_args(argv("drive spec.json --model nfs --speedup 0")).is_err());
        assert!(parse_args(argv("drive spec.json --model nfs --speedup nan")).is_err());
        assert!(parse_args(argv("drive spec.json --model nfs --max-in-flight 0")).is_err());
        assert!(parse_args(argv("drive spec.json --model nfs --queue-cap 0")).is_err());
        assert!(parse_args(argv("drive spec.json --model nfs --fail-ppm 2000000")).is_err());
        assert!(parse_args(argv("drive spec.json --model nfs --warp 9")).is_err());
    }

    #[test]
    fn parses_families() {
        assert_eq!(parse_family("exp").unwrap(), Family::Exponential);
        assert_eq!(parse_family("phase:3").unwrap(), Family::PhaseType(3));
        assert_eq!(parse_family("gamma:2").unwrap(), Family::Gamma(2));
    }

    #[test]
    fn parses_fit() {
        // Text-data form: a family, nothing else.
        assert_eq!(
            parse_args(argv("fit data.txt --family exp")).unwrap(),
            Command::Fit {
                path: "data.txt".into(),
                family: Some(Family::Exponential),
                out: None,
                json: false,
                since: None,
                until: None,
                sample: None,
            }
        );
        // Capture form: no family needed at parse time (the file's magic
        // decides at execution), window and output flags accepted.
        assert_eq!(
            parse_args(argv(
                "fit cap.bin --out spec.json --json --since 100 --until 900 --sample 4"
            ))
            .unwrap(),
            Command::Fit {
                path: "cap.bin".into(),
                family: None,
                out: Some("spec.json".into()),
                json: true,
                since: Some(100),
                until: Some(900),
                sample: Some(4),
            }
        );
    }

    /// A temp directory unique to this test *invocation*: pid alone is not
    /// enough (every test of one run shares it), so a process-wide
    /// monotonic counter disambiguates tests that use the same label —
    /// and repeated helpers within one test.
    fn unique_test_dir(label: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("uswg-cli-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_and_tables_render() {
        let help = execute(Command::Help).unwrap();
        assert!(help.contains("uswg run"));
        let tables = execute(Command::Tables).unwrap();
        assert!(tables.contains("Table 5.1"));
        assert!(tables.contains("REG/USER/TEMP"));
        assert!(tables.contains("extremely heavy I/O"));
    }

    #[test]
    fn init_run_fit_round_trip() {
        let dir = unique_test_dir("test");
        let spec_path = dir.join("spec.json");
        let log_path = dir.join("log.json");

        // init
        let msg = execute(Command::Init {
            path: spec_path.to_string_lossy().into(),
        })
        .unwrap();
        assert!(msg.contains("wrote"));

        // shrink the spec so the test is fast
        let mut spec =
            WorkloadSpec::from_json(&std::fs::read_to_string(&spec_path).unwrap()).unwrap();
        spec.run.sessions_per_user = 2;
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(10)
            .unwrap();
        std::fs::write(&spec_path, spec.to_json().unwrap()).unwrap();

        // run (direct) with log output
        let out = execute(Command::Run {
            path: spec_path.to_string_lossy().into(),
            model: None,
            out: Some(log_path.to_string_lossy().into()),
            scheduler: None,
            spill: None,
            shards: None,
            users: None,
            summary: false,
        })
        .unwrap();
        assert!(out.contains("Per-system-call summary"));
        assert!(out.contains("sessions: 2"));
        let log = UsageLog::from_json(&std::fs::read_to_string(&log_path).unwrap()).unwrap();
        assert!(!log.ops().is_empty());

        // run (modelled), once per scheduler backend: same spec, same seed,
        // so the rendered summaries must be identical text.
        let run_with = |scheduler| {
            execute(Command::Run {
                path: spec_path.to_string_lossy().into(),
                model: Some(ModelConfig::default_local()),
                out: None,
                scheduler,
                spill: None,
                shards: None,
                users: None,
                summary: false,
            })
            .unwrap()
        };
        let out = run_with(Some(SchedulerBackend::Heap));
        assert!(out.contains("response time per byte"));
        assert_eq!(out, run_with(Some(SchedulerBackend::Calendar)));

        // summary mode with a population override: O(1)-memory headline run.
        let out = execute(Command::Run {
            path: spec_path.to_string_lossy().into(),
            model: Some(ModelConfig::default_local()),
            out: None,
            scheduler: None,
            spill: None,
            shards: None,
            users: NonZeroUsize::new(3),
            summary: true,
        })
        .unwrap();
        // 3 users × 2 sessions each: the override reached the DES.
        assert!(out.contains("model local"));
        assert!(out.contains("sessions: 6"));

        // fit
        let data_path = dir.join("data.txt");
        let mut body = String::from("# exponential-ish data\n");
        let truth = uswg_core::Exponential::new(500.0).unwrap();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
        for _ in 0..500 {
            let _ = writeln!(body, "{:.3}", truth.sample(&mut rng));
        }
        std::fs::write(&data_path, body).unwrap();
        let out = execute(Command::Fit {
            path: data_path.to_string_lossy().into(),
            family: Some(Family::Exponential),
            out: None,
            json: false,
            since: None,
            until: None,
            sample: None,
        })
        .unwrap();
        assert!(out.contains("KS D ="));

        // A text data file without --family is caught at execution, with
        // the capture-only flags rejected for the same reason.
        let data_arg: String = data_path.to_string_lossy().into();
        let err = execute(parse_args(argv(&format!("fit {data_arg}"))).unwrap());
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("--family")));
        let err = execute(parse_args(argv(&format!("fit {data_arg} --json"))).unwrap());
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("not one")));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_replicate_and_spill_smoke() {
        let dir = unique_test_dir("exp-test");
        let spec_path = dir.join("spec.json");
        let spill_path = dir.join("log.bin");

        let mut spec = WorkloadSpec::paper_default().unwrap();
        spec.run.sessions_per_user = 2;
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(10)
            .unwrap();
        std::fs::write(&spec_path, spec.to_json().unwrap()).unwrap();
        let spec_arg: String = spec_path.to_string_lossy().into();

        // sweep: summary and full-log modes print the same table layout.
        let out = execute(
            parse_args(argv(&format!(
                "sweep {spec_arg} --model nfs --users 1,2 --jobs 1"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("Sweep — model nfs"), "{out}");
        assert!(out.contains("mode: summary"), "{out}");
        let out = execute(
            parse_args(argv(&format!(
                "sweep {spec_arg} --model local --mix 0,1 --mode full-log"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("mode: full-log"), "{out}");

        // replicate: per-seed rows plus the CI and pooled lines.
        let out = execute(
            parse_args(argv(&format!(
                "replicate {spec_arg} --model local --seeds 5,6 --jobs 1"
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("Replication study — model local"), "{out}");
        assert!(out.contains("95% CI"), "{out}");
        assert!(out.contains("pooled over all seeds"), "{out}");

        // run --spill: streams the log to disk; reading it back gives the
        // exact log an in-memory run would have produced.
        let out = execute(
            parse_args(argv(&format!(
                "run {spec_arg} --model local --spill {}",
                spill_path.to_string_lossy()
            )))
            .unwrap(),
        )
        .unwrap();
        assert!(out.contains("binary log spilled"), "{out}");
        let spilled = uswg_core::read_spill_path(&spill_path).unwrap();
        let report = spec.run_des(&ModelConfig::default_local()).unwrap();
        assert_eq!(
            spilled.to_json().unwrap(),
            report.log.to_json().unwrap(),
            "spilled log must be byte-identical to the in-memory log"
        );

        // analyze: the run → spill → analyze pipeline, text shape.
        let spill_arg: String = spill_path.to_string_lossy().into();
        let out = execute(parse_args(argv(&format!("analyze {spill_arg}"))).unwrap()).unwrap();
        assert!(out.contains("Per-system-call summary"), "{out}");
        assert!(out.contains("v2 compressed"), "{out}");
        assert!(out.contains("response time per byte"), "{out}");
        assert!(!out.contains("Per-user-type"), "breakdown is opt-in: {out}");
        // --by-type adds the breakdown table.
        let out =
            execute(parse_args(argv(&format!("analyze {spill_arg} --by-type"))).unwrap()).unwrap();
        assert!(out.contains("Per-user-type summary"), "{out}");
        // --json emits a parseable report whose counts match the log.
        let out =
            execute(parse_args(argv(&format!("analyze {spill_arg} --json"))).unwrap()).unwrap();
        let parsed = serde_json::parse_value(&out).unwrap();
        assert_eq!(
            parsed.get("ops"),
            Some(&serde::Value::U64(report.log.ops().len() as u64))
        );
        assert_eq!(parsed.get("sessions"), Some(&serde::Value::U64(2)));
        assert!(parsed
            .get("op_mix")
            .and_then(serde::Value::as_seq)
            .is_some());
        assert_eq!(parsed.get("user_types"), Some(&serde::Value::Null));

        // Corrupt input surfaces as an error (a nonzero exit in main).
        let corrupt_path = dir.join("corrupt.bin");
        std::fs::write(&corrupt_path, b"NOTSPILLNOTDATA").unwrap();
        let err = execute(
            parse_args(argv(&format!("analyze {}", corrupt_path.to_string_lossy()))).unwrap(),
        );
        assert!(err.is_err(), "corrupt spill input must fail");
        // A truncated (unsealed) file fails too — no partial silent output.
        let bytes = std::fs::read(&spill_path).unwrap();
        std::fs::write(&corrupt_path, &bytes[..bytes.len() - 9]).unwrap();
        let err = execute(
            parse_args(argv(&format!("analyze {}", corrupt_path.to_string_lossy()))).unwrap(),
        );
        assert!(err.is_err(), "truncated spill input must fail");

        // Fault-free spill files never print the fault line — the text
        // report stays exactly what it was before fault injection existed.
        let out = execute(parse_args(argv(&format!("analyze {spill_arg}"))).unwrap()).unwrap();
        assert!(!out.contains("faults:"), "{out}");

        // run --shards 1 routes through the sharded driver but replays the
        // exact path: the rendered summary is identical text. A larger K
        // still runs (this spec has one user, so 4 shards collapse to 1
        // active shard and the output stays identical too).
        let run_sharded = |flags: &str| {
            execute(parse_args(argv(&format!("run {spec_arg} --model local{flags}"))).unwrap())
                .unwrap()
        };
        let unsharded = run_sharded("");
        assert_eq!(unsharded, run_sharded(" --shards 1"));
        assert_eq!(unsharded, run_sharded(" --shards 4"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salvage_reports_truncated_files_and_rejects_corrupt_ones() {
        let dir = unique_test_dir("salvage");
        let spec_path = dir.join("spec.json");
        let spill_path = dir.join("log.bin");

        // A *faulted* spec, so the analysis also exercises the fault
        // reporting path end to end.
        let mut spec = WorkloadSpec::paper_default().unwrap();
        spec.run.sessions_per_user = 2;
        spec.run.faults = uswg_core::FaultSpec {
            fault_ppm: 200_000,
            spike_ppm: 0,
            spike_micros: 0,
            retry: uswg_core::RetryPolicy {
                max_attempts: 2,
                base_backoff_micros: 100,
                max_backoff_micros: 800,
            },
        };
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(10)
            .unwrap();
        std::fs::write(&spec_path, spec.to_json().unwrap()).unwrap();
        execute(
            parse_args(argv(&format!(
                "run {} --model local --spill {}",
                spec_path.to_string_lossy(),
                spill_path.to_string_lossy()
            )))
            .unwrap(),
        )
        .unwrap();
        let spill_arg: String = spill_path.to_string_lossy().into();

        // Intact file: clean exit, and the fault outcomes are reported.
        let (out, status) =
            execute_with_status(parse_args(argv(&format!("analyze {spill_arg}"))).unwrap())
                .unwrap();
        assert_eq!(status, EXIT_OK);
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("retries"), "{out}");
        assert!(out.contains("abort rate"), "{out}");
        assert!(!out.contains("warning"), "{out}");
        // The JSON report carries the same tallies plus the salvage flag.
        let (out, _) =
            execute_with_status(parse_args(argv(&format!("analyze {spill_arg} --json"))).unwrap())
                .unwrap();
        let parsed = serde_json::parse_value(&out).unwrap();
        assert_eq!(parsed.get("salvaged"), Some(&serde::Value::Bool(false)));
        assert!(matches!(parsed.get("retries"), Some(serde::Value::U64(n)) if *n > 0));

        // Truncated file, no --salvage: hard failure (exit 2 via main).
        let bytes = std::fs::read(&spill_path).unwrap();
        let cut_path = dir.join("cut.bin");
        std::fs::write(&cut_path, &bytes[..bytes.len() * 2 / 3]).unwrap();
        let cut_arg: String = cut_path.to_string_lossy().into();
        assert!(execute(parse_args(argv(&format!("analyze {cut_arg}"))).unwrap()).is_err());

        // Truncated file with --salvage: the intact prefix is reported,
        // with a warning and the salvaged exit status.
        let (out, status) =
            execute_with_status(parse_args(argv(&format!("analyze {cut_arg} --salvage"))).unwrap())
                .unwrap();
        assert_eq!(status, EXIT_SALVAGED);
        assert!(out.contains("warning: spill file is truncated"), "{out}");
        assert!(out.contains("Per-system-call summary"), "{out}");
        // JSON mode flags the salvage instead of the warning line.
        let (out, status) = execute_with_status(
            parse_args(argv(&format!("analyze {cut_arg} --salvage --json"))).unwrap(),
        )
        .unwrap();
        assert_eq!(status, EXIT_SALVAGED);
        let parsed = serde_json::parse_value(&out).unwrap();
        assert_eq!(parsed.get("salvaged"), Some(&serde::Value::Bool(true)));

        // Corruption is NOT salvageable: an invalid frame tag right after
        // the magic fails closed even under --salvage.
        let mut corrupt = bytes.clone();
        corrupt[8] = 0xEE;
        let corrupt_path = dir.join("corrupt.bin");
        std::fs::write(&corrupt_path, &corrupt).unwrap();
        let err = execute_with_status(
            parse_args(argv(&format!(
                "analyze {} --salvage",
                corrupt_path.to_string_lossy()
            )))
            .unwrap(),
        );
        assert!(
            err.is_err(),
            "corrupt frames must fail closed under salvage"
        );

        // Trailing garbage after a valid end marker is corruption too —
        // the frames are fine, but the file has been tampered with or
        // damaged in exactly the region the index footer occupies. Fail
        // closed, salvage or not.
        let mut tampered = bytes.clone();
        tampered.push(0x5A);
        let tampered_path = dir.join("tampered.bin");
        std::fs::write(&tampered_path, &tampered).unwrap();
        let tampered_arg: String = tampered_path.to_string_lossy().into();
        assert!(execute(parse_args(argv(&format!("analyze {tampered_arg}"))).unwrap()).is_err());
        assert!(execute_with_status(
            parse_args(argv(&format!("analyze {tampered_arg} --salvage"))).unwrap()
        )
        .is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Pulls a u64 field out of a parsed `analyze --json` report.
    fn json_u64(parsed: &serde::Value, key: &str) -> u64 {
        match parsed.get(key) {
            Some(serde::Value::U64(n)) => *n,
            other => panic!("{key}: {other:?}"),
        }
    }

    #[test]
    fn windowed_and_parallel_analyze_use_the_index() {
        let dir = unique_test_dir("window");
        let spill_path = dir.join("timed.bin");
        // A capture with a known time line: op i completes at i*10 µs, at
        // a small frame cap so the file holds many seekable frames.
        let mut sink = SpillSink::with_options(
            std::fs::File::create(&spill_path).unwrap(),
            SpillCodec::Compressed,
            64,
        )
        .unwrap();
        for i in 0..2000u64 {
            sink.record_op(&uswg_core::OpRecord {
                at: i * 10,
                user: (i % 11) as usize,
                session: (i % 3) as u32,
                op: uswg_core::OpKind::ALL[(i % 8) as usize],
                ino: i % 17,
                bytes: (i * 31) % 2048,
                file_size: 4096,
                response: (i * 7) % 500 + 1,
                category: uswg_core::FileCategory::REG_USER_RDONLY,
                retries: 0,
                aborted: false,
            });
        }
        sink.finish().unwrap();
        let arg: String = spill_path.to_string_lossy().into();

        // Full sequential pass, for reference.
        let (full, status) =
            execute_with_status(parse_args(argv(&format!("analyze {arg} --json"))).unwrap())
                .unwrap();
        assert_eq!(status, EXIT_OK);
        let full = serde_json::parse_value(&full).unwrap();
        assert_eq!(json_u64(&full, "ops"), 2000);
        assert_eq!(full.get("indexed"), Some(&serde::Value::Bool(false)));

        // A time window over [5000, 7000] µs holds ops 500..=700 and, via
        // the index, decodes only the overlapping frames.
        let (out, status) = execute_with_status(
            parse_args(argv(&format!(
                "analyze {arg} --json --since 5000 --until 7000"
            )))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(status, EXIT_OK);
        let windowed = serde_json::parse_value(&out).unwrap();
        assert_eq!(json_u64(&windowed, "ops"), 201);
        assert_eq!(windowed.get("indexed"), Some(&serde::Value::Bool(true)));
        let decoded = json_u64(&windowed, "frames_decoded");
        let total = json_u64(&windowed, "frames_total");
        assert_eq!(total, 2000 / 64 + 1);
        assert!(decoded <= 5, "{decoded} frames for a 201-op window");
        // Text mode names the coverage.
        let (out, _) = execute_with_status(
            parse_args(argv(&format!("analyze {arg} --since 5000 --until 7000"))).unwrap(),
        )
        .unwrap();
        assert!(out.contains("frame index: decoded"), "{out}");

        // Parallel analyze matches the sequential pass: counters exactly,
        // derived floats within 1e-9.
        let (out, status) = execute_with_status(
            parse_args(argv(&format!("analyze {arg} --json --jobs 4"))).unwrap(),
        )
        .unwrap();
        assert_eq!(status, EXIT_OK);
        let parallel = serde_json::parse_value(&out).unwrap();
        for key in ["ops", "sessions", "data_bytes", "goodput_bytes"] {
            assert_eq!(json_u64(&parallel, key), json_u64(&full, key), "{key}");
        }
        let (p, f) = match (
            parallel.get("response_per_byte"),
            full.get("response_per_byte"),
        ) {
            (Some(serde::Value::F64(p)), Some(serde::Value::F64(f))) => (*p, *f),
            other => panic!("{other:?}"),
        };
        assert!((p - f).abs() < 1e-9);
        assert_eq!(json_u64(&parallel, "frames_decoded"), total);

        // Sampling decodes every k-th frame.
        let (out, _) = execute_with_status(
            parse_args(argv(&format!("analyze {arg} --json --sample 4"))).unwrap(),
        )
        .unwrap();
        let sampled = serde_json::parse_value(&out).unwrap();
        assert_eq!(
            json_u64(&sampled, "frames_decoded"),
            (total as usize).div_ceil(4) as u64
        );

        // A cut inside the index footer: windowed flags fall back to the
        // streamed pass; --salvage reports *exact* totals (the record
        // stream is complete) with the footer warning, never an error.
        let bytes = std::fs::read(&spill_path).unwrap();
        let cut_path = dir.join("footer-cut.bin");
        std::fs::write(&cut_path, &bytes[..bytes.len() - 5]).unwrap();
        let cut_arg: String = cut_path.to_string_lossy().into();
        let (out, status) = execute_with_status(
            parse_args(argv(&format!(
                "analyze {cut_arg} --salvage --since 5000 --until 7000"
            )))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(status, EXIT_SALVAGED);
        assert!(out.contains("no index footer"), "{out}");
        assert!(out.contains("index footer is truncated"), "{out}");
        assert!(out.contains("totals are exact"), "{out}");
        assert!(out.contains(": 201 ops"), "{out}");
        // Same cut without --salvage is still an error…
        assert!(execute(parse_args(argv(&format!("analyze {cut_arg}"))).unwrap()).is_err());
        // …and a JSON salvage of the whole cut file carries every record.
        let (out, status) = execute_with_status(
            parse_args(argv(&format!("analyze {cut_arg} --salvage --json"))).unwrap(),
        )
        .unwrap();
        assert_eq!(status, EXIT_SALVAGED);
        let parsed = serde_json::parse_value(&out).unwrap();
        assert_eq!(json_u64(&parsed, "ops"), 2000);
        assert_eq!(parsed.get("salvaged"), Some(&serde::Value::Bool(true)));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fit_synthesizes_a_runnable_spec_from_a_capture() {
        let dir = unique_test_dir("fitspill");
        let spec_path = dir.join("spec.json");
        let spill_path = dir.join("cap.bin");
        let fitted_path = dir.join("fitted.json");

        let mut spec = WorkloadSpec::paper_default().unwrap();
        spec.run.n_users = 3;
        spec.run.sessions_per_user = 3;
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(10)
            .unwrap();
        std::fs::write(&spec_path, spec.to_json().unwrap()).unwrap();
        let spec_arg: String = spec_path.to_string_lossy().into();
        let spill_arg: String = spill_path.to_string_lossy().into();
        let fitted_arg: String = fitted_path.to_string_lossy().into();
        execute(
            parse_args(argv(&format!(
                "run {spec_arg} --model local --spill {spill_arg}"
            )))
            .unwrap(),
        )
        .unwrap();

        // Text mode: per-measure fit table plus the written spec.
        let (out, status) = execute_with_status(
            parse_args(argv(&format!("fit {spill_arg} --out {fitted_arg}"))).unwrap(),
        )
        .unwrap();
        assert_eq!(status, EXIT_OK);
        assert!(out.contains("Fitted distributions"), "{out}");
        assert!(out.contains("fitted spec written to"), "{out}");
        assert!(out.contains("3 users"), "{out}");

        // The emitted spec parses, validates, and actually runs.
        let fitted =
            WorkloadSpec::from_json(&std::fs::read_to_string(&fitted_path).unwrap()).unwrap();
        assert_eq!(fitted.run.n_users, 3);
        assert_eq!(fitted.run.sessions_per_user, 3);
        let report = fitted.run_des(&ModelConfig::default_local()).unwrap();
        assert!(!report.log.ops().is_empty());

        // JSON mode embeds the spec and the observation counts.
        let (out, _) =
            execute_with_status(parse_args(argv(&format!("fit {spill_arg} --json"))).unwrap())
                .unwrap();
        let parsed = serde_json::parse_value(&out).unwrap();
        assert_eq!(json_u64(&parsed, "users"), 3);
        assert!(json_u64(&parsed, "ops") > 0);
        assert!(parsed.get("spec").is_some());
        assert!(parsed
            .get("fits")
            .and_then(serde::Value::as_seq)
            .is_some_and(|fits| !fits.is_empty()));

        // A capture fits every measure itself: --family contradicts it.
        let err = execute(parse_args(argv(&format!("fit {spill_arg} --family exp"))).unwrap());
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("drop --family")));

        // A window past the end of the capture selects nothing — a clear
        // error, not a degenerate spec; analyze agrees.
        let err =
            execute(parse_args(argv(&format!("fit {spill_arg} --since 99999999999"))).unwrap());
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("selects no records")));
        let err =
            execute(parse_args(argv(&format!("analyze {spill_arg} --since 99999999999"))).unwrap());
        assert!(matches!(err, Err(CliError::Usage(m)) if m.contains("selects no records")));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drive_loopback_smoke() {
        let dir = unique_test_dir("drive");
        let spec_path = dir.join("spec.json");
        let mut spec = WorkloadSpec::paper_default().unwrap();
        spec.run.sessions_per_user = 2;
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(10)
            .unwrap();
        std::fs::write(&spec_path, spec.to_json().unwrap()).unwrap();

        // Replay heavily compressed (every op arrives ~immediately) against
        // a slow loopback with a tiny queue: completes fast, sheds hard.
        let (out, status) = execute_with_status(
            parse_args(argv(&format!(
                "drive {} --model local --speedup 1000000 --max-in-flight 2 \
                 --queue-cap 8 --service-us 300",
                spec_path.to_string_lossy()
            )))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(status, EXIT_OK);
        assert!(out.contains("replaying open-loop"), "{out}");
        assert!(out.contains("drive report (target loopback-vfs)"), "{out}");
        assert!(out.contains("shed"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("peak in-flight"), "{out}");
        // The streaming producer's run stats make it into the report.
        assert!(out.contains("generated stream:"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drive_from_spill_replays_and_salvages_truncation() {
        let dir = unique_test_dir("fromspill");
        let spec_path = dir.join("spec.json");
        let spill_path = dir.join("cap.bin");
        let mut spec = WorkloadSpec::paper_default().unwrap();
        spec.run.sessions_per_user = 2;
        spec.fsc = spec
            .fsc
            .with_files_per_user(8)
            .unwrap()
            .with_shared_files(10)
            .unwrap();
        std::fs::write(&spec_path, spec.to_json().unwrap()).unwrap();
        let spec_arg: String = spec_path.to_string_lossy().into();
        let spill_arg: String = spill_path.to_string_lossy().into();

        // Capture a run, then replay the capture without a model.
        execute(
            parse_args(argv(&format!(
                "run {spec_arg} --model local --spill {spill_arg}"
            )))
            .unwrap(),
        )
        .unwrap();
        let expected_ops = spec
            .run_des(&ModelConfig::default_local())
            .unwrap()
            .log
            .ops()
            .len();
        let (out, status) = execute_with_status(
            parse_args(argv(&format!(
                "drive {spec_arg} --from-spill {spill_arg} --speedup 1000000"
            )))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(status, EXIT_OK);
        assert!(out.contains("streaming capture"), "{out}");
        assert!(out.contains(&format!("offered {expected_ops}")), "{out}");
        assert!(!out.contains("warning"), "{out}");

        // A truncated capture drains what it has, warns, and exits 3 —
        // the drive-side twin of `analyze --salvage`.
        let bytes = std::fs::read(&spill_path).unwrap();
        let cut_path = dir.join("cut.bin");
        std::fs::write(&cut_path, &bytes[..bytes.len() * 2 / 3]).unwrap();
        let (out, status) = execute_with_status(
            parse_args(argv(&format!(
                "drive {spec_arg} --from-spill {} --speedup 1000000",
                cut_path.to_string_lossy()
            )))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(status, EXIT_SALVAGED);
        assert!(out.contains("warning: op source ended early"), "{out}");
        assert!(out.contains("drive report"), "{out}");

        // A file that is not a spill capture at all is a hard error.
        let bogus = dir.join("bogus.bin");
        std::fs::write(&bogus, b"NOTASPILLFILE").unwrap();
        assert!(execute(
            parse_args(argv(&format!(
                "drive {spec_arg} --from-spill {}",
                bogus.to_string_lossy()
            )))
            .unwrap()
        )
        .is_err());

        std::fs::remove_dir_all(&dir).ok();
    }
}
