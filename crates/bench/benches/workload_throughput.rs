//! Criterion: whole-generator throughput — sessions generated per second by
//! the direct driver, and events per second through the discrete-event
//! driver with the NFS model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uswg_core::experiment::ModelConfig;
use uswg_core::{FillPattern, RunConfig, WorkloadSpec};

fn quick_spec(users: usize, sessions: u32, seed: u64) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run = RunConfig {
        n_users: users,
        sessions_per_user: sessions,
        seed,
        record_ops: false,
        cdf_resolution: 1024,
        ..RunConfig::default()
    };
    spec.fsc = spec
        .fsc
        .with_files_per_user(20)
        .unwrap()
        .with_shared_files(40)
        .unwrap()
        .with_fill(FillPattern::Sparse);
    spec
}

fn bench_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    let mut seed = 0u64;
    group.bench_function("direct_driver/1user_2sessions", |b| {
        b.iter(|| {
            seed += 1;
            black_box(quick_spec(1, 2, seed).run_direct().unwrap())
        })
    });
    group.bench_function("des_driver_nfs/2users_2sessions", |b| {
        b.iter(|| {
            seed += 1;
            black_box(
                quick_spec(2, 2, seed)
                    .run_des(&ModelConfig::default_nfs())
                    .unwrap(),
            )
        })
    });
    group.bench_function("fsc_build/2users", |b| {
        b.iter(|| {
            seed += 1;
            black_box(quick_spec(2, 1, seed).generate_fs().unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_direct);
criterion_main!(benches);
