//! Criterion: random-variate generation throughput — analytic sampling vs
//! table-driven inverse transform at several resolutions (DESIGN.md §5,
//! ablation 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use uswg_core::{CdfTable, Distribution, Exponential, MultiStageGamma, PhaseTypeExp};

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);

    let exp = Exponential::new(1024.0).unwrap();
    group.bench_function("analytic/exponential", |b| {
        b.iter(|| black_box(exp.sample(&mut rng)))
    });

    let phase =
        PhaseTypeExp::new(vec![(0.4, 12.7, 0.0), (0.3, 18.2, 18.0), (0.3, 15.0, 40.0)]).unwrap();
    group.bench_function("analytic/phase_type_3", |b| {
        b.iter(|| black_box(phase.sample(&mut rng)))
    });

    let gamma = MultiStageGamma::new(vec![
        (0.7, 1.3, 12.3, 0.0),
        (0.2, 1.5, 12.4, 23.0),
        (0.1, 1.4, 12.3, 41.0),
    ])
    .unwrap();
    group.bench_function("analytic/multi_stage_gamma_3", |b| {
        b.iter(|| black_box(gamma.sample(&mut rng)))
    });

    for resolution in [64usize, 1_024, 16_384] {
        let table = CdfTable::from_distribution(&gamma, resolution).unwrap();
        group.bench_with_input(
            BenchmarkId::new("cdf_table/gamma_3", resolution),
            &table,
            |b, t| b.iter(|| black_box(t.sample(&mut rng))),
        );
    }
    group.finish();
}

fn bench_tabulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gds_compile");
    let gamma = MultiStageGamma::single(1.5, 25.4, 12.0).unwrap();
    for resolution in [256usize, 1_024, 4_096] {
        group.bench_with_input(
            BenchmarkId::new("tabulate", resolution),
            &resolution,
            |b, &r| b.iter(|| black_box(CdfTable::from_distribution(&gamma, r).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_tabulation);
criterion_main!(benches);
