//! Criterion: raw system-call cost of the in-memory file system substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use uswg_core::{OpenFlags, SeekFrom, Vfs, VfsConfig};

fn bench_vfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("vfs");

    group.bench_function("create_unlink", |b| {
        let mut fs = Vfs::new(VfsConfig::default());
        let mut proc = fs.new_process();
        let mut i = 0u64;
        b.iter(|| {
            let path = format!("/f{i}");
            i += 1;
            let fd = fs.creat(&mut proc, &path).unwrap();
            fs.close(&mut proc, fd).unwrap();
            fs.unlink(&path).unwrap();
        })
    });

    let payload = vec![0xA5u8; 8_192];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("write_8k_overwrite", |b| {
        let mut fs = Vfs::new(VfsConfig::default());
        let mut proc = fs.new_process();
        let fd = fs.creat(&mut proc, "/w").unwrap();
        b.iter(|| {
            fs.lseek(&mut proc, fd, SeekFrom::Start(0)).unwrap();
            black_box(fs.write(&mut proc, fd, &payload).unwrap());
        })
    });

    group.bench_function("read_8k_sequential_wrap", |b| {
        let mut fs = Vfs::new(VfsConfig::default());
        fs.write_file("/r", &vec![1u8; 1 << 20]).unwrap();
        let mut proc = fs.new_process();
        let fd = fs.open(&mut proc, "/r", OpenFlags::read_only()).unwrap();
        let mut buf = vec![0u8; 8_192];
        b.iter(|| {
            let n = fs.read(&mut proc, fd, &mut buf).unwrap();
            if n == 0 {
                fs.lseek(&mut proc, fd, SeekFrom::Start(0)).unwrap();
            }
            black_box(n);
        })
    });

    group.bench_function("stat", |b| {
        let mut fs = Vfs::new(VfsConfig::default());
        fs.mkdir_all("/a/b").unwrap();
        fs.write_file("/a/b/target", b"x").unwrap();
        b.iter(|| black_box(fs.stat("/a/b/target").unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_vfs);
criterion_main!(benches);
