//! Criterion: the three file-system timing models on identical operations —
//! stage-generation cost (model bookkeeping, cache maintenance) and the
//! uncontended response time each model assigns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use uswg_core::experiment::ModelConfig;
use uswg_core::{isolated_response, FileId, OpKind, OpRequest, ResourcePool, SimTime};

fn bench_stage_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_stage_generation");
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for config in [
        ModelConfig::default_local(),
        ModelConfig::default_nfs(),
        ModelConfig::default_whole_file(),
    ] {
        let mut pool = ResourcePool::new();
        let mut model = config.build(&mut pool);
        let mut file = 0u64;
        group.bench_with_input(
            BenchmarkId::new("read_1k", config.name()),
            &config,
            |b, _| {
                b.iter(|| {
                    file += 1;
                    let req = OpRequest::data(0, OpKind::Read, FileId(file % 512), 0, 1_024, 8_192);
                    black_box(model.stages(&req, &mut rng));
                })
            },
        );
    }
    group.finish();
}

fn bench_isolated_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_isolated_response");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for config in [
        ModelConfig::default_local(),
        ModelConfig::default_nfs(),
        ModelConfig::default_whole_file(),
    ] {
        let mut pool = ResourcePool::new();
        let mut model = config.build(&mut pool);
        let mut t = 0u64;
        group.bench_with_input(
            BenchmarkId::new("open_read_close", config.name()),
            &config,
            |b, _| {
                b.iter(|| {
                    // Fresh second per iteration keeps resources idle, so
                    // the measured quantity is model arithmetic only.
                    t += 1;
                    let start = SimTime::from_secs(t);
                    let file = FileId(t % 512);
                    let open = OpRequest::metadata(0, OpKind::Open, file, 8_192);
                    let read = OpRequest::data(0, OpKind::Read, file, 0, 1_024, 8_192);
                    let close = OpRequest::metadata(0, OpKind::Close, file, 8_192);
                    let mut total = 0u64;
                    for req in [&open, &read, &close] {
                        total += isolated_response(model.as_mut(), &mut pool, req, &mut rng, start);
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stage_generation, bench_isolated_response);
criterion_main!(benches);
