//! Criterion: end-to-end discrete-event throughput (events/sec), the
//! heap-vs-calendar scheduler comparison across pending-event populations,
//! and the guide-table vs binary-search sampling comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;
use std::hint::black_box;
use uswg_bench::{hold_simulation, HOLD_BATCH};
use uswg_core::experiment::ModelConfig;
use uswg_core::{CdfTable, FillPattern, MultiStageGamma, SchedulerBackend, WorkloadSpec};

/// A small but non-trivial DES workload: 4 users × 4 sessions against NFS.
fn des_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().unwrap();
    spec.run.n_users = 4;
    spec.run.sessions_per_user = 4;
    spec.fsc = spec
        .fsc
        .with_files_per_user(15)
        .unwrap()
        .with_shared_files(30)
        .unwrap()
        .with_fill(FillPattern::Sparse);
    spec
}

fn bench_des_events(c: &mut Criterion) {
    let mut spec = des_spec();
    let model = ModelConfig::default_nfs();
    // Count events once; the run is seed-deterministic (and backend-
    // invariant), so every iteration processes exactly this many.
    let events = spec.run_des(&model).unwrap().events;

    let mut group = c.benchmark_group("des_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events));
    for backend in [SchedulerBackend::Heap, SchedulerBackend::Calendar] {
        spec.run.scheduler = Some(backend);
        group.bench_with_input(
            BenchmarkId::new("nfs/4users_4sessions", backend.name()),
            &spec,
            |b, spec| b.iter(|| black_box(spec.run_des(&model).unwrap().events)),
        );
    }
    group.finish();
}

/// The tentpole comparison on the shared [`uswg_bench::HoldModel`] workout:
/// heap vs calendar at pending populations from 1k to 1M. The acceptance
/// bar is calendar ≥ 2× heap at ≥ 100k pending (`BENCH_baseline.json`
/// records the measured ratios for the same workout).
fn bench_scheduler_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_hold");
    group.sample_size(10);
    group.throughput(Throughput::Elements(HOLD_BATCH));
    for pending in [1_000usize, 10_000, 100_000, 1_000_000] {
        for backend in [SchedulerBackend::Heap, SchedulerBackend::Calendar] {
            let mut sim = hold_simulation(backend, pending);
            group.bench_with_input(
                BenchmarkId::new(backend.name(), pending),
                &pending,
                |b, _| b.iter(|| black_box(sim.run_steps(HOLD_BATCH))),
            );
        }
    }
    group.finish();
}

fn bench_guided_vs_binary(c: &mut Criterion) {
    let gamma = MultiStageGamma::new(vec![
        (0.7, 1.3, 12.3, 0.0),
        (0.2, 1.5, 12.4, 23.0),
        (0.1, 1.4, 12.3, 41.0),
    ])
    .unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("inverse_transform");
    for resolution in [256usize, 1_024, 4_096, 16_384] {
        let table = CdfTable::from_distribution(&gamma, resolution).unwrap();
        group.bench_with_input(BenchmarkId::new("guided", resolution), &table, |b, t| {
            b.iter(|| black_box(t.sample(&mut rng)))
        });
        group.bench_with_input(
            BenchmarkId::new("binary_search", resolution),
            &table,
            |b, t| b.iter(|| black_box(t.sample_unguided(&mut rng))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_des_events,
    bench_scheduler_backends,
    bench_guided_vs_binary
);
criterion_main!(benches);
