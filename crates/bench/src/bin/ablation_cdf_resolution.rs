//! Ablation — CDF-table resolution (DESIGN.md §5, ablation 2): the paper
//! warns that table memory "can quickly become prohibitively large" (Section
//! 4.2). How much resolution does sampling accuracy actually need?

use rand::SeedableRng;
use uswg_core::{CdfTable, Distribution, PhaseTypeExp, Summary, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-phase mixture with a hard offset — the worst case for coarse
    // tables (the jump must be localized).
    let truth = PhaseTypeExp::new(vec![(0.6, 900.0, 0.0), (0.4, 1_500.0, 6_000.0)])?;
    let n = 200_000;

    let mut table = Table::new(vec![
        "resolution",
        "memory (B)",
        "mean err %",
        "p50 err %",
        "p99 err %",
        "KS vs truth",
    ])
    .with_title("Ablation: CDF-table resolution vs sampling fidelity");

    for resolution in [16usize, 64, 256, 1_024, 4_096, 16_384] {
        let compiled = CdfTable::from_distribution(&truth, resolution)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..n).map(|_| compiled.sample(&mut rng)).collect();
        let s = Summary::of(&samples);
        let mean_err = 100.0 * (s.mean - truth.mean()).abs() / truth.mean();
        let p50_err = 100.0 * (Summary::quantile(&samples, 0.5) - truth.quantile(0.5)).abs()
            / truth.quantile(0.5);
        let p99_err = 100.0 * (Summary::quantile(&samples, 0.99) - truth.quantile(0.99)).abs()
            / truth.quantile(0.99);
        let ks = uswg_core::gof::ks_statistic(&samples, &truth)?;
        table.row(vec![
            resolution.to_string(),
            compiled.memory_bytes().to_string(),
            format!("{mean_err:.3}"),
            format!("{p50_err:.3}"),
            format!("{p99_err:.3}"),
            format!("{:.4}", ks.statistic),
        ]);
    }
    println!("{}", table.render());
    println!(
        "A few hundred points per distribution already put every error under\n\
         1%: the Section 4.2 memory blow-up (types × categories × samples)\n\
         is avoidable by keeping tables near 256-1024 points, as the USIM's\n\
         default (1024) does."
    );
    Ok(())
}
