//! Figure 5.4 — distribution of per-session average file size over 600
//! simulated login sessions, before and after smoothing.

use uswg_bench::{paper_workload, seed};
use uswg_core::metrics::{session_series, SessionMetric};
use uswg_core::{plot, FillPattern, Histogram, Summary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = paper_workload()?;
    spec.run.n_users = 6;
    spec.run.sessions_per_user = 100;
    spec.run.record_ops = false;
    spec.run.seed = seed();
    spec.fsc = spec.fsc.with_fill(FillPattern::Sparse);

    let log = spec.run_direct()?;
    let series = session_series(&log, SessionMetric::MeanFileSize);
    let s = Summary::of(&series);
    println!(
        "Figure 5.4: Average file size, bytes ({} sessions; mean {:.0}, std {:.0}).\n\
         Paper shape: right-skewed mass below ~20 000 bytes with a long tail\n\
         to ~60 000.\n",
        s.n, s.mean, s.std_dev
    );
    let hist = Histogram::new(&series, 0.0, 60_000.0, 30);
    println!("(a) Before smoothing");
    println!("{}", plot::plot_histogram(&hist.bins(), 50));
    println!("(b) After smoothing");
    println!("{}", plot::plot_histogram(&hist.smoothed(1).bins(), 50));
    Ok(())
}
