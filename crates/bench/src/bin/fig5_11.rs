//! Figure 5.11 — average response time per byte, 100% light I/O users
//! (think time 20 000 µs), 1–6 concurrent users.

use uswg_bench::{run_user_sweep_figure, slope};
use uswg_core::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let points = run_user_sweep_figure(
        "Figure 5.11",
        "100% light I/O users",
        presets::heavy_light_population(0.0)?,
    )?;
    println!(
        "Paper observation: the 5 000 µs (Fig 5.7) and 20 000 µs (this figure)\n\
         curves are similar — think time is small next to response-time\n\
         variance. Measured slope: {:.2} µs/B per user.",
        slope(&points)
    );
    Ok(())
}
