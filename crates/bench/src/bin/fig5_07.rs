//! Figure 5.7 — average response time per byte, 100% heavy I/O users
//! (think time 5 000 µs), 1–6 concurrent users.

use uswg_bench::{run_user_sweep_figure, slope};
use uswg_core::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let points = run_user_sweep_figure(
        "Figure 5.7",
        "100% heavy I/O users",
        presets::heavy_light_population(1.0)?,
    )?;
    println!(
        "Paper shape: much flatter than Figure 5.6 (competition softened by\n\
         think time). Measured slope: {:.2} µs/B per user.",
        slope(&points)
    );
    Ok(())
}
