//! Perf-baseline snapshot: measures the three hot paths this repo's
//! performance work targets and writes a machine-readable `BENCH_*.json`.
//!
//! Measurements:
//!
//! 1. **Sampling** — guide-table vs binary-search inverse transform, ns per
//!    draw at several table resolutions;
//! 2. **DES throughput** — end-to-end events/sec of a 4-user NFS run;
//! 3. **Scheduler backends** — heap vs calendar-queue hold-model churn at
//!    pending populations from 1k to 1M events (the acceptance bar:
//!    calendar ≥ 2× heap at ≥ 100k pending);
//! 4. **Sweep parallelism** — wall-clock of a 4-point `user_sweep`, serial
//!    vs all-cores.
//!
//! Usage: `cargo run --release -p uswg-bench --bin bench_baseline [out.json]`
//! (default output `BENCH_baseline.json` in the current directory). CI runs
//! this as a non-blocking job and uploads the JSON as an artifact, so the
//! perf trajectory of the repo is recorded per commit.

use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use uswg_bench::{hold_simulation, HOLD_BATCH};
use uswg_core::experiment::{user_sweep_with, ModelConfig, Parallelism};
use uswg_core::{CdfTable, FillPattern, MultiStageGamma, SchedulerBackend, WorkloadSpec};

#[derive(Debug, Serialize)]
struct SamplingPoint {
    resolution: usize,
    guided_ns_per_draw: f64,
    binary_search_ns_per_draw: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct DesPoint {
    users: usize,
    sessions_per_user: u32,
    events: u64,
    events_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct SchedulerPoint {
    pending_events: usize,
    heap_ns_per_event: f64,
    calendar_ns_per_event: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct SweepPointTiming {
    points: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    workers: usize,
}

#[derive(Debug, Serialize)]
struct Baseline {
    schema: u32,
    sampling: Vec<SamplingPoint>,
    des: DesPoint,
    scheduler: Vec<SchedulerPoint>,
    sweep: SweepPointTiming,
}

/// Times `f` over enough iterations to fill ~200 ms; returns ns/iter.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Warm up + calibrate.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 50 || iters >= 1 << 28 {
            return elapsed.as_secs_f64() * 1e9 / iters as f64;
        }
        iters = iters.saturating_mul(8);
    }
}

fn measure_sampling() -> Vec<SamplingPoint> {
    use rand::SeedableRng;
    let gamma = MultiStageGamma::new(vec![
        (0.7, 1.3, 12.3, 0.0),
        (0.2, 1.5, 12.4, 23.0),
        (0.1, 1.4, 12.3, 41.0),
    ])
    .expect("valid mixture");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    [256usize, 1_024, 4_096, 16_384]
        .into_iter()
        .map(|resolution| {
            let table = CdfTable::from_distribution(&gamma, resolution).expect("tabulates");
            let guided = time_ns(|| {
                black_box(table.sample(&mut rng));
            });
            let binary = time_ns(|| {
                black_box(table.sample_unguided(&mut rng));
            });
            SamplingPoint {
                resolution,
                guided_ns_per_draw: guided,
                binary_search_ns_per_draw: binary,
                speedup: binary / guided,
            }
        })
        .collect()
}

fn bench_spec(users: usize, sessions: u32) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().expect("paper defaults build");
    spec.run.n_users = users;
    spec.run.sessions_per_user = sessions;
    spec.fsc = spec
        .fsc
        .with_files_per_user(15)
        .expect("positive")
        .with_shared_files(30)
        .expect("positive")
        .with_fill(FillPattern::Sparse);
    spec
}

fn measure_des() -> DesPoint {
    let spec = bench_spec(4, 4);
    let model = ModelConfig::default_nfs();
    let events = spec.run_des(&model).expect("runs").events;
    let ns_per_run = time_ns(|| {
        black_box(spec.run_des(&model).expect("runs").events);
    });
    DesPoint {
        users: 4,
        sessions_per_user: 4,
        events,
        events_per_sec: events as f64 / (ns_per_run / 1e9),
    }
}

/// Per-event cost of the shared [`uswg_bench::HoldModel`] workout (the same
/// one the `scheduler_hold` criterion group measures).
fn hold_ns_per_event(backend: SchedulerBackend, pending: usize) -> f64 {
    let mut sim = hold_simulation(backend, pending);
    time_ns(|| {
        black_box(sim.run_steps(HOLD_BATCH));
    }) / HOLD_BATCH as f64
}

fn measure_scheduler() -> Vec<SchedulerPoint> {
    [1_000usize, 10_000, 100_000, 1_000_000]
        .into_iter()
        .map(|pending| {
            let heap = hold_ns_per_event(SchedulerBackend::Heap, pending);
            let calendar = hold_ns_per_event(SchedulerBackend::Calendar, pending);
            SchedulerPoint {
                pending_events: pending,
                heap_ns_per_event: heap,
                calendar_ns_per_event: calendar,
                speedup: heap / calendar,
            }
        })
        .collect()
}

fn measure_sweep() -> SweepPointTiming {
    let spec = bench_spec(1, 6);
    let model = ModelConfig::default_nfs();
    let users = [1usize, 2, 3, 4];
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(users.len());

    // One untimed pass warms allocators and the page cache.
    let warm = user_sweep_with(&spec, &model, users, Parallelism::Serial).expect("runs");

    let start = Instant::now();
    let serial = user_sweep_with(&spec, &model, users, Parallelism::Serial).expect("runs");
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let parallel = user_sweep_with(&spec, &model, users, Parallelism::Auto).expect("runs");
    let parallel_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(serial, parallel, "parallel sweep must reproduce serial");
    assert_eq!(serial, warm, "sweeps must be deterministic");
    SweepPointTiming {
        points: users.len(),
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
        workers,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());

    eprintln!("measuring sampling paths...");
    let sampling = measure_sampling();
    eprintln!("measuring DES throughput...");
    let des = measure_des();
    eprintln!("measuring scheduler backends...");
    let scheduler = measure_scheduler();
    eprintln!("measuring sweep parallelism...");
    let sweep = measure_sweep();

    let baseline = Baseline {
        schema: 2,
        sampling,
        des,
        scheduler,
        sweep,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("serializes");
    std::fs::write(&out_path, &json).expect("snapshot written");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
