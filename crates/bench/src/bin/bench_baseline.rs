//! Perf-baseline snapshot: measures the hot paths this repo's performance
//! work targets and writes a machine-readable `BENCH_*.json` (schema 9).
//!
//! Measurements:
//!
//! 1. **Sampling** — guide-table vs binary-search inverse transform, ns per
//!    draw at several table resolutions;
//! 2. **DES throughput** — end-to-end events/sec of a 4-user NFS run;
//! 3. **Scheduler backends** — heap vs calendar-queue hold-model churn at
//!    pending populations from 1k to 1M events (the acceptance bar:
//!    calendar ≥ 2× heap at ≥ 100k pending);
//! 4. **Sweep parallelism** — wall-clock of a `user_sweep`, serial vs
//!    all-cores (best of [`TRIALS`] runs each, so the committed snapshot
//!    reports schedule cost rather than timer noise);
//! 5. **Sweep memory** — peak allocation of a full sweep in `FullLog` vs
//!    `Summary` mode (counting global allocator) and the bytes each mode
//!    retains per point: the O(users × sessions × ops) log versus the
//!    O(1) streaming sink;
//! 6. **Pool scaling** — the work-stealing pool at 1/2/4 workers against
//!    the serial loop (best-of-[`TRIALS`]; 1 worker short-circuits to the
//!    identical serial code path, so regressions there are pure noise);
//! 7. **Single-run shard scaling** (schema 4) — one multi-user run split
//!    across 1/2/4 shards via `ShardedDesDriver`, against the unsharded
//!    single-instance baseline. One shard replays the exact simulation
//!    (its overhead column is the sharding machinery itself); more shards
//!    scale with cores on multi-core CI (a 1-core container shows ~1×);
//! 8. **Spill codec** (schema 5) — the same record stream written raw (v1)
//!    vs compressed (v2): bytes on disk, the committed size ratio, and
//!    write/read wall-clock (both decodes are asserted lossless against
//!    the source log);
//! 9. **Sharded spill memory** (schema 5) — peak resident allocation of a
//!    full-fidelity `--spill`-style run at 1/2/4 shards through the
//!    streamed k-way merge: the acceptance bar is a *flat* profile in K
//!    (no per-shard logs materialized), with the K = 1 output asserted
//!    record-identical to the unsharded spill;
//! 10. **Fault injection** (schema 6) — the same NFS run clean vs under a
//!     heavy `FaultSpec` (transient faults + latency spikes + retries):
//!     wall-clock overhead of the fault path, plus the retry/abort tallies
//!     and the goodput fraction the faulted run reports. The clean run is
//!     additionally asserted to carry zero fault outcomes, pinning the
//!     "default spec is fault-free" contract into the committed snapshot;
//! 11. **Drive memory** (schema 7) — peak resident allocation of an
//!     open-loop replay of a ≥ 1M-op workload, the old way (materialize
//!     the full log, then drive the `Vec`) vs the streaming way (a live
//!     DES producer feeding the pacer through a bounded channel). The
//!     acceptance bar: the streamed peak is O(queue), not O(run length),
//!     so the ratio must stay ≫ 1;
//! 12. **User-arena memory** (schema 8) — resident bytes/user and users/sec
//!     of the DES driver itself at 1M and 10M users on an idle-heavy
//!     population, against the committed pre-refactor (per-user struct)
//!     measurement. The acceptance bar: ≥ 4× fewer bytes/user at 1M;
//! 13. **Analyze passes** (schema 9) — `uswg analyze` over a ≥ 1M-op
//!     capture: the full sequential stream, an indexed ~5% window (bytes
//!     actually read counted through a `CountingReader` — the O(window)
//!     contract on disk I/O) and an indexed parallel full pass asserted
//!     to reproduce the sequential statistics.
//!
//! Usage: `cargo run --release -p uswg-bench --bin bench_baseline [out.json]`
//! (default output `BENCH_baseline.json` in the current directory). CI runs
//! this as a non-blocking job and uploads the JSON as an artifact, so the
//! perf trajectory of the repo is recorded per commit.

use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use uswg_bench::{hold_simulation, HOLD_BATCH};
use uswg_core::experiment::{user_sweep_with, ModelConfig, Parallelism, SweepMode};
use uswg_core::{
    read_spill, read_spill_path, CdfTable, FillPattern, LogSink, MultiStageGamma, SchedulerBackend,
    SpillCodec, SpillSink, SummarySink, UsageLog, WorkloadSpec,
};

/// A [`System`]-backed global allocator that tracks live and peak bytes, so
/// the memory section below measures *actual* allocation, not estimates.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: defers entirely to `System`; the atomics only observe sizes.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            note_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak bytes allocated above the starting water line while `f` runs.
fn peak_alloc_during(f: impl FnOnce()) -> usize {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    f();
    PEAK.load(Ordering::Relaxed).saturating_sub(base)
}

/// Timed trials per wall-clock measurement; the minimum is reported.
const TRIALS: usize = 5;

/// Best-of-[`TRIALS`] wall-clock of `f`, in milliseconds.
fn best_ms(mut f: impl FnMut()) -> f64 {
    (0..TRIALS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

#[derive(Debug, Serialize)]
struct SamplingPoint {
    resolution: usize,
    guided_ns_per_draw: f64,
    binary_search_ns_per_draw: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct DesPoint {
    users: usize,
    sessions_per_user: u32,
    events: u64,
    events_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct SchedulerPoint {
    pending_events: usize,
    heap_ns_per_event: f64,
    calendar_ns_per_event: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct SweepPointTiming {
    points: usize,
    serial_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    workers: usize,
}

#[derive(Debug, Serialize)]
struct MemoryPoint {
    points: usize,
    users_per_point_max: usize,
    sessions_per_user: u32,
    /// Peak allocation above baseline over the whole sweep, FullLog mode.
    fulllog_peak_bytes: usize,
    /// Peak allocation above baseline over the whole sweep, Summary mode.
    summary_peak_bytes: usize,
    /// Bytes the FullLog mode retains for its largest point (the
    /// materialized op + session records).
    fulllog_retained_bytes_per_point: usize,
    /// Bytes the Summary mode retains per point (the streaming sink —
    /// constant regardless of users × sessions × ops).
    summary_retained_bytes_per_point: usize,
}

#[derive(Debug, Serialize)]
struct PoolPoint {
    /// Worker count requested via `Parallelism::Threads`.
    workers_requested: usize,
    /// Workers actually scheduled (requests are capped at the host's core
    /// count — oversubscribing a CPU-bound sweep only adds switches).
    workers_effective: usize,
    sweep_ms: f64,
    speedup_vs_serial: f64,
}

#[derive(Debug, Serialize)]
struct ShardPoint {
    /// Shard count K requested via `RunConfig::shards`.
    shards: usize,
    /// Shards that actually held users (`min(K, users)`).
    active_shards: usize,
    /// Workers the driver scheduled (one per core, capped at active).
    workers: usize,
    run_ms: f64,
    speedup_vs_unsharded: f64,
}

#[derive(Debug, Serialize)]
struct ShardScaling {
    users: usize,
    sessions_per_user: u32,
    /// The exact single-instance baseline (summary mode, best-of-TRIALS).
    unsharded_ms: f64,
    points: Vec<ShardPoint>,
}

#[derive(Debug, Serialize)]
struct SpillCodecBench {
    /// Op records in the measured stream.
    ops: usize,
    /// Session records in the measured stream.
    sessions: usize,
    /// Bytes of the v1 (fixed-width raw) encoding.
    raw_bytes: usize,
    /// Bytes of the v2 (delta+varint/RLE, CRC-framed) encoding.
    compressed_bytes: usize,
    /// `compressed_bytes / raw_bytes` — the committed size ratio the
    /// acceptance criteria track (< 1 means the codec earns its keep).
    compressed_to_raw_ratio: f64,
    raw_write_ms: f64,
    compressed_write_ms: f64,
    raw_read_ms: f64,
    compressed_read_ms: f64,
}

#[derive(Debug, Serialize)]
struct ShardSpillPoint {
    /// Shard count K of the streamed full-log run.
    shards: usize,
    /// Peak bytes allocated above baseline over the whole run + merge.
    peak_bytes: usize,
}

#[derive(Debug, Serialize)]
struct ShardSpillMemory {
    users: usize,
    sessions_per_user: u32,
    /// Op records the run spills (identical at every K).
    ops: usize,
    /// Peak allocation of the *unsharded* streaming spill run, the
    /// reference water line.
    unsharded_peak_bytes: usize,
    /// Peaks at K = 1/2/4 — the acceptance bar is a flat profile: the
    /// streamed merge never materializes per-shard logs, so the peak is
    /// O(shards × frame), not O(run length).
    points: Vec<ShardSpillPoint>,
}

#[derive(Debug, Serialize)]
struct FaultBench {
    users: usize,
    sessions_per_user: u32,
    /// Per-attempt transient-fault probability of the faulted run, ppm.
    fault_ppm: u32,
    /// Per-op latency-spike probability of the faulted run, ppm.
    spike_ppm: u32,
    /// Attempt budget per op (first try + retries).
    max_attempts: u32,
    /// Wall-clock of the run with the default (disabled) `FaultSpec`.
    clean_ms: f64,
    /// Wall-clock of the same run under the fault spec above.
    faulted_ms: f64,
    /// `faulted_ms / clean_ms` — what the fault machinery costs when it
    /// actually fires (the disabled path is the byte-identity contract,
    /// so its overhead is pinned at zero by test, not measured here).
    overhead: f64,
    /// Retries the faulted run performed.
    retries: u64,
    /// Ops that exhausted their attempt budget.
    aborted_ops: u64,
    abort_rate: f64,
    /// Data bytes successfully moved (aborted ops excluded).
    goodput_bytes: u64,
    /// Data bytes the op stream asked for.
    data_bytes: u64,
}

#[derive(Debug, Serialize)]
struct DriveMemory {
    users: usize,
    sessions_per_user: u32,
    /// Op records in the driven stream (asserted ≥ 1M so the contrast
    /// below can never be measured against a toy run).
    ops: usize,
    /// Bound shared by the producer channel and the pacer queue — the
    /// streamed path's entire resident op budget.
    queue_cap: usize,
    /// Peak allocation of the pre-streaming path: run the DES to a full
    /// in-memory log, copy its ops out, drive the `Vec`. O(run length).
    materialized_peak_bytes: usize,
    /// Peak allocation of `drive_stream` fed by a concurrent DES
    /// producer over a bounded channel. O(queue), flat in run length.
    streamed_peak_bytes: usize,
    /// `materialized / streamed` — the schema-7 acceptance line: the
    /// streaming drive must hold its peak well below the materialized
    /// path's on the same workload.
    materialized_to_streamed_ratio: f64,
}

#[derive(Debug, Serialize)]
struct UserMemoryPoint {
    users: usize,
    /// Peak bytes allocated above the pre-run water line by the DES run
    /// itself: user arenas, scheduler queue and simulation turnover. The
    /// file system, catalog and compiled tables are built *outside* the
    /// measured window — they are O(spec), not O(users), and would only
    /// dilute the per-user figure.
    driver_peak_bytes: usize,
    /// `driver_peak_bytes / users` — the headline "memory diet" figure.
    bytes_per_user: f64,
    wall_ms: f64,
    /// Whole-population throughput: `users / wall_clock` of one run in
    /// which every user completes one login session.
    users_per_sec: f64,
    sessions: u64,
    ops: u64,
}

#[derive(Debug, Serialize)]
struct UserMemory {
    sessions_per_user: u32,
    /// bytes/user of the same 1M-user workload measured on the
    /// pre-refactor driver (PR 7: one `UserState` struct per user, with
    /// its `Process`, `Option<Session>` and retry slots inline), on this
    /// container — the fixed denominator of `reduction_vs_pre_1m`.
    pre_refactor_bytes_per_user_1m: f64,
    /// `pre_refactor_bytes_per_user_1m / bytes_per_user` at 1M users —
    /// the schema-8 acceptance line (must stay ≥ 4).
    reduction_vs_pre_1m: f64,
    points: Vec<UserMemoryPoint>,
}

#[derive(Debug, Serialize)]
struct AnalyzeBench {
    /// Op records in the capture (asserted ≥ 1M by construction).
    ops: usize,
    /// Session records interleaved into the capture.
    sessions: usize,
    /// Frames in the capture, per its index footer.
    frames: usize,
    /// Size of the sealed capture (record stream + footer).
    file_bytes: usize,
    /// Wall-clock of the full sequential streaming pass.
    sequential_ms: f64,
    /// Bytes the sequential pass read — essentially the whole file.
    sequential_bytes_read: u64,
    /// Fraction of the capture's time line the window below covers.
    window_fraction: f64,
    /// Wall-clock of the indexed windowed pass.
    windowed_ms: f64,
    /// Bytes the windowed pass read: the trailer probe, the footer and
    /// only the overlapping frames.
    windowed_bytes_read: u64,
    /// Frames the window selected (of `frames`).
    windowed_frames_decoded: usize,
    /// `windowed / sequential` bytes read — the schema-9 acceptance
    /// line: a ~5% window must stay well under a tenth of the file.
    windowed_to_sequential_byte_ratio: f64,
    /// Workers the parallel full pass requested from the stealpool.
    parallel_jobs: usize,
    /// Wall-clock of the indexed parallel full pass (asserted to match
    /// the sequential statistics before timing).
    parallel_ms: f64,
    /// `sequential_ms / parallel_ms` — scales with cores on multi-core
    /// CI; on a 1-core container the fan-out is pure overhead, so < 1×
    /// there is expected, not a regression.
    parallel_speedup: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    schema: u32,
    sampling: Vec<SamplingPoint>,
    des: DesPoint,
    scheduler: Vec<SchedulerPoint>,
    sweep: SweepPointTiming,
    memory: MemoryPoint,
    pool: Vec<PoolPoint>,
    shard: ShardScaling,
    spill: SpillCodecBench,
    shard_spill: ShardSpillMemory,
    faults: FaultBench,
    drive_memory: DriveMemory,
    user_memory: UserMemory,
    analyze: AnalyzeBench,
}

/// Times `f` over enough iterations to fill ~200 ms; returns ns/iter.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Warm up + calibrate.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 50 || iters >= 1 << 28 {
            return elapsed.as_secs_f64() * 1e9 / iters as f64;
        }
        iters = iters.saturating_mul(8);
    }
}

fn measure_sampling() -> Vec<SamplingPoint> {
    use rand::SeedableRng;
    let gamma = MultiStageGamma::new(vec![
        (0.7, 1.3, 12.3, 0.0),
        (0.2, 1.5, 12.4, 23.0),
        (0.1, 1.4, 12.3, 41.0),
    ])
    .expect("valid mixture");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    [256usize, 1_024, 4_096, 16_384]
        .into_iter()
        .map(|resolution| {
            let table = CdfTable::from_distribution(&gamma, resolution).expect("tabulates");
            let guided = time_ns(|| {
                black_box(table.sample(&mut rng));
            });
            let binary = time_ns(|| {
                black_box(table.sample_unguided(&mut rng));
            });
            SamplingPoint {
                resolution,
                guided_ns_per_draw: guided,
                binary_search_ns_per_draw: binary,
                speedup: binary / guided,
            }
        })
        .collect()
}

fn bench_spec(users: usize, sessions: u32) -> WorkloadSpec {
    let mut spec = WorkloadSpec::paper_default().expect("paper defaults build");
    spec.run.n_users = users;
    spec.run.sessions_per_user = sessions;
    spec.fsc = spec
        .fsc
        .with_files_per_user(15)
        .expect("positive")
        .with_shared_files(30)
        .expect("positive")
        .with_fill(FillPattern::Sparse);
    spec
}

fn measure_des() -> DesPoint {
    let spec = bench_spec(4, 4);
    let model = ModelConfig::default_nfs();
    let events = spec.run_des(&model).expect("runs").events;
    let ns_per_run = time_ns(|| {
        black_box(spec.run_des(&model).expect("runs").events);
    });
    DesPoint {
        users: 4,
        sessions_per_user: 4,
        events,
        events_per_sec: events as f64 / (ns_per_run / 1e9),
    }
}

/// Per-event cost of the shared [`uswg_bench::HoldModel`] workout (the same
/// one the `scheduler_hold` criterion group measures).
fn hold_ns_per_event(backend: SchedulerBackend, pending: usize) -> f64 {
    let mut sim = hold_simulation(backend, pending);
    time_ns(|| {
        black_box(sim.run_steps(HOLD_BATCH));
    }) / HOLD_BATCH as f64
}

fn measure_scheduler() -> Vec<SchedulerPoint> {
    [1_000usize, 10_000, 100_000, 1_000_000]
        .into_iter()
        .map(|pending| {
            let heap = hold_ns_per_event(SchedulerBackend::Heap, pending);
            let calendar = hold_ns_per_event(SchedulerBackend::Calendar, pending);
            SchedulerPoint {
                pending_events: pending,
                heap_ns_per_event: heap,
                calendar_ns_per_event: calendar,
                speedup: heap / calendar,
            }
        })
        .collect()
}

const SWEEP_USERS: [usize; 4] = [1, 2, 3, 4];

fn run_sweep(
    spec: &WorkloadSpec,
    parallelism: Parallelism,
) -> Vec<uswg_core::experiment::SweepPoint> {
    user_sweep_with(
        spec,
        &ModelConfig::default_nfs(),
        SWEEP_USERS,
        parallelism,
        SweepMode::Summary,
    )
    .expect("runs")
}

/// Measures sweep parallelism (Auto vs serial) and pool scaling at 1/2/4
/// workers in one pass, sharing the warm run and the serial baseline so
/// the timed serial sweep happens exactly once per snapshot.
fn measure_sweep_and_pool() -> (SweepPointTiming, Vec<PoolPoint>) {
    let spec = bench_spec(1, 6);

    // One untimed pass warms allocators and the page cache; the assertions
    // pin the determinism contract the parallel schedules must keep.
    let warm = run_sweep(&spec, Parallelism::Serial);
    let serial_ms = best_ms(|| {
        let got = run_sweep(&spec, Parallelism::Serial);
        assert_eq!(got, warm, "sweeps must be deterministic");
    });
    let parallel_ms = best_ms(|| {
        let got = run_sweep(&spec, Parallelism::Auto);
        assert_eq!(got, warm, "parallel sweep must reproduce serial");
    });
    let sweep = SweepPointTiming {
        points: SWEEP_USERS.len(),
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms,
        workers: Parallelism::Auto.effective_workers(SWEEP_USERS.len()),
    };
    let pool = [1usize, 2, 4]
        .into_iter()
        .map(|workers| {
            let sweep_ms = best_ms(|| {
                let got = run_sweep(&spec, Parallelism::Threads(workers));
                assert_eq!(got, warm, "stolen schedule must reproduce serial");
            });
            PoolPoint {
                workers_requested: workers,
                workers_effective: Parallelism::Threads(workers)
                    .effective_workers(SWEEP_USERS.len()),
                sweep_ms,
                speedup_vs_serial: serial_ms / sweep_ms,
            }
        })
        .collect();
    (sweep, pool)
}

fn measure_memory() -> MemoryPoint {
    let spec = bench_spec(1, 6);
    let model = ModelConfig::default_nfs();
    // Warm both paths so one-time lazy allocations don't count as peaks.
    let _ = user_sweep_with(
        &spec,
        &model,
        SWEEP_USERS,
        Parallelism::Serial,
        SweepMode::FullLog,
    )
    .expect("runs");
    let fulllog_peak_bytes = peak_alloc_during(|| {
        black_box(
            user_sweep_with(
                &spec,
                &model,
                SWEEP_USERS,
                Parallelism::Serial,
                SweepMode::FullLog,
            )
            .expect("runs"),
        );
    });
    let summary_peak_bytes = peak_alloc_during(|| {
        black_box(
            user_sweep_with(
                &spec,
                &model,
                SWEEP_USERS,
                Parallelism::Serial,
                SweepMode::Summary,
            )
            .expect("runs"),
        );
    });
    // What each mode *retains* per point: FullLog keeps every record of
    // the largest point's materialized log; Summary keeps one fixed-size
    // sink no matter how large the point is.
    let mut biggest = spec.clone();
    biggest.run.n_users = *SWEEP_USERS.iter().max().expect("non-empty");
    let report = biggest.run_des(&model).expect("runs");
    let fulllog_retained =
        std::mem::size_of_val(report.log.ops()) + std::mem::size_of_val(report.log.sessions());
    MemoryPoint {
        points: SWEEP_USERS.len(),
        users_per_point_max: biggest.run.n_users,
        sessions_per_user: spec.run.sessions_per_user,
        fulllog_peak_bytes,
        summary_peak_bytes,
        fulllog_retained_bytes_per_point: fulllog_retained,
        summary_retained_bytes_per_point: std::mem::size_of::<SummarySink>(),
    }
}

/// Measures one multi-user run (the "one giant point" regime sweeps cannot
/// parallelize) sharded 1/2/4 ways against the unsharded exact path. The
/// K = 1 assertion pins the byte-identity contract while it measures the
/// sharding machinery's overhead; K > 1 sanity-checks only op-stream
/// tallies, since per-shard resource models change response times by
/// design.
fn measure_shards() -> ShardScaling {
    use std::num::NonZeroUsize;
    let spec = bench_spec(8, 3);
    let model = ModelConfig::default_nfs();
    // The exact single-instance baseline goes through the raw driver —
    // never `spec.run_des_summary` — so it stays unsharded even when the
    // process runs inside a `USWG_SHARDS` matrix entry (the same dodge
    // tests/shard_equivalence.rs uses for its oracle).
    let exact_run = || {
        let (vfs, catalog) = spec.generate_fs().expect("fs builds");
        let population = spec.compile().expect("compiles");
        let mut pool = uswg_core::ResourcePool::new();
        let built = model.build(&mut pool);
        uswg_core::DesDriver::new()
            .run_with_sink(
                vfs,
                catalog,
                &population,
                built,
                pool,
                &spec.run,
                SummarySink::new(),
            )
            .expect("runs")
            .0
    };
    let warm = exact_run();
    let unsharded_ms = best_ms(|| {
        assert_eq!(exact_run(), warm, "summary runs must be deterministic");
    });
    let points = [1usize, 2, 4]
        .into_iter()
        .map(|k| {
            let mut sharded = spec.clone();
            sharded.run.shards = Some(NonZeroUsize::new(k).expect("positive"));
            let plan = uswg_core::ShardPlan::new(spec.run.n_users, sharded.run.shards.unwrap());
            let run_ms = best_ms(|| {
                let (sink, _) = sharded.run_des_summary(&model).expect("runs");
                if k == 1 {
                    assert_eq!(sink, warm, "one shard must replay the exact path");
                } else {
                    // The paper workload has shared read-write files, so op
                    // streams may couple across users; sessions stay exact.
                    assert_eq!(sink.sessions, warm.sessions);
                    assert!(sink.ops > 0);
                }
            });
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            ShardPoint {
                shards: k,
                active_shards: plan.active_shards(),
                workers: cores.min(plan.active_shards()),
                run_ms,
                speedup_vs_unsharded: unsharded_ms / run_ms,
            }
        })
        .collect();
    ShardScaling {
        users: spec.run.n_users,
        sessions_per_user: spec.run.sessions_per_user,
        unsharded_ms,
        points,
    }
}

/// Replays `log` into a spill sink under `codec`, returning the file
/// bytes.
fn spill_encode(log: &UsageLog, codec: SpillCodec) -> Vec<u8> {
    let mut sink = SpillSink::with_codec(Vec::new(), codec).expect("in-memory sink");
    for op in log.ops() {
        sink.record_op(op);
    }
    for s in log.sessions() {
        sink.record_session(s);
    }
    sink.finish().expect("in-memory finish")
}

/// Measures the spill codecs over a real run's record stream: size on
/// disk, encode and decode wall-clock. Both decodes are asserted lossless
/// so the committed ratio can never come from a codec that drops data.
fn measure_spill_codec() -> SpillCodecBench {
    let spec = bench_spec(6, 6);
    let log = spec.run_des(&ModelConfig::default_nfs()).expect("runs").log;
    let raw = spill_encode(&log, SpillCodec::Raw);
    let compressed = spill_encode(&log, SpillCodec::Compressed);
    let source_json = log.to_json().expect("serializes");
    for bytes in [&raw, &compressed] {
        let back = read_spill(bytes.as_slice()).expect("decodes");
        assert_eq!(
            back.to_json().expect("serializes"),
            source_json,
            "spill decode must be lossless"
        );
    }
    let raw_write_ms = best_ms(|| {
        black_box(spill_encode(&log, SpillCodec::Raw));
    });
    let compressed_write_ms = best_ms(|| {
        black_box(spill_encode(&log, SpillCodec::Compressed));
    });
    let raw_read_ms = best_ms(|| {
        black_box(read_spill(raw.as_slice()).expect("decodes"));
    });
    let compressed_read_ms = best_ms(|| {
        black_box(read_spill(compressed.as_slice()).expect("decodes"));
    });
    SpillCodecBench {
        ops: log.ops().len(),
        sessions: log.sessions().len(),
        raw_bytes: raw.len(),
        compressed_bytes: compressed.len(),
        compressed_to_raw_ratio: compressed.len() as f64 / raw.len() as f64,
        raw_write_ms,
        compressed_write_ms,
        raw_read_ms,
        compressed_read_ms,
    }
}

/// Measures resident memory of the full-fidelity spill path as the shard
/// count grows: the streamed k-way merge must keep the peak flat in K
/// (schema-5 acceptance), because no per-shard `UsageLog` is ever
/// materialized. K = 1 is additionally asserted record-identical to the
/// unsharded streaming run.
fn measure_shard_spill_memory() -> ShardSpillMemory {
    use std::num::NonZeroUsize;
    let spec = bench_spec(8, 3);
    let model = ModelConfig::default_nfs();
    let dir = std::env::temp_dir().join(format!("uswg-bench-spill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    // The unsharded reference: the raw streaming path (dodging any
    // USWG_SHARDS matrix entry), measured through the same file-backed
    // sink the sharded points use.
    let unsharded_path = dir.join("unsharded.spill");
    let exact_spill = || {
        let (vfs, catalog) = spec.generate_fs().expect("fs builds");
        let population = spec.compile().expect("compiles");
        let mut pool = uswg_core::ResourcePool::new();
        let built = model.build(&mut pool);
        let (sink, _) = uswg_core::DesDriver::new()
            .run_with_sink(
                vfs,
                catalog,
                &population,
                built,
                pool,
                &spec.run,
                SpillSink::create(&unsharded_path).expect("spill file"),
            )
            .expect("runs");
        sink.finish().expect("seals");
    };
    exact_spill(); // warm
    let unsharded_peak_bytes = peak_alloc_during(exact_spill);
    let reference = read_spill_path(&unsharded_path).expect("reads back");
    let points = [1usize, 2, 4]
        .into_iter()
        .map(|k| {
            let mut sharded = spec.clone();
            sharded.run.shards = Some(NonZeroUsize::new(k).expect("positive"));
            let path = dir.join(format!("k{k}.spill"));
            let run = || {
                let (sink, _) = sharded
                    .run_des_with_sink(&model, SpillSink::create(&path).expect("spill file"))
                    .expect("runs");
                sink.finish().expect("seals");
            };
            run(); // warm
            let peak_bytes = peak_alloc_during(run);
            if k == 1 {
                assert_eq!(
                    read_spill_path(&path)
                        .expect("reads back")
                        .to_json()
                        .expect("serializes"),
                    reference.to_json().expect("serializes"),
                    "one streamed shard must replay the unsharded capture"
                );
            }
            ShardSpillPoint {
                shards: k,
                peak_bytes,
            }
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    ShardSpillMemory {
        users: spec.run.n_users,
        sessions_per_user: spec.run.sessions_per_user,
        ops: reference.ops().len(),
        unsharded_peak_bytes,
        points,
    }
}

/// Measures the fault-injection path on the NFS preset: the same spec run
/// clean (default `FaultSpec`, asserted to produce zero fault outcomes)
/// and under a heavy fault spec (asserted to produce nonzero retries), so
/// the snapshot records both what faults cost and that the disabled path
/// stays fault-free.
fn measure_faults() -> FaultBench {
    use uswg_core::{FaultSpec, RetryPolicy};
    let spec = bench_spec(6, 4);
    let model = ModelConfig::default_nfs();
    let fault_spec = FaultSpec {
        fault_ppm: 100_000,
        spike_ppm: 50_000,
        spike_micros: 2_000,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_micros: 200,
            max_backoff_micros: 3_200,
        },
    };
    let mut faulted = spec.clone();
    faulted.run = faulted.run.with_faults(fault_spec);

    let clean_warm = spec.run_des_summary(&model).expect("runs").0;
    assert_eq!(
        (clean_warm.retries, clean_warm.aborted_ops),
        (0, 0),
        "the default FaultSpec must produce zero fault outcomes"
    );
    let faulted_warm = faulted.run_des_summary(&model).expect("runs").0;
    assert!(
        faulted_warm.retries > 0,
        "a 10% per-attempt fault rate must retry"
    );

    let clean_ms = best_ms(|| {
        let (sink, _) = spec.run_des_summary(&model).expect("runs");
        assert_eq!(sink, clean_warm, "clean runs must be deterministic");
    });
    let faulted_ms = best_ms(|| {
        let (sink, _) = faulted.run_des_summary(&model).expect("runs");
        assert_eq!(sink, faulted_warm, "faulted runs must be deterministic");
    });
    FaultBench {
        users: spec.run.n_users,
        sessions_per_user: spec.run.sessions_per_user,
        fault_ppm: fault_spec.fault_ppm,
        spike_ppm: fault_spec.spike_ppm,
        max_attempts: fault_spec.retry.max_attempts,
        clean_ms,
        faulted_ms,
        overhead: faulted_ms / clean_ms,
        retries: faulted_warm.retries,
        aborted_ops: faulted_warm.aborted_ops,
        abort_rate: faulted_warm.abort_rate(),
        goodput_bytes: faulted_warm.goodput_bytes(),
        data_bytes: faulted_warm.data_bytes,
    }
}

/// Measures the open-loop drive's resident memory on a ≥ 1M-op workload,
/// both ways: the pre-streaming path (materialize the whole DES log, copy
/// the ops into a `Vec`, drive it) against `drive_stream` fed by a live
/// DES producer over a bounded channel. The counting allocator is global,
/// so the producer thread's allocations land in the streamed peak too —
/// what's measured is the whole pipeline, not just the pacer.
fn measure_drive_memory() -> DriveMemory {
    use std::sync::Arc;
    use uswg_drive::{
        drive, drive_stream, ChannelSource, DriveConfig, LoopbackConfig, LoopbackVfs, SourceError,
    };
    let spec = bench_spec(32, 52);
    let model = ModelConfig::default_nfs();
    let config = DriveConfig {
        speedup: 1e9,
        max_in_flight: 8,
        queue_cap: 1024,
        ..DriveConfig::default()
    };
    let loopback = || Arc::new(LoopbackVfs::new(LoopbackConfig::default()));
    let run_materialized = |spec: &WorkloadSpec| -> usize {
        let ops = spec.run_des(&model).expect("runs").log.ops().to_vec();
        let count = ops.len();
        black_box(drive(ops, loopback(), &config).expect("drives"));
        count
    };
    let run_streamed = |spec: &WorkloadSpec| {
        let (rx, handle) = spec.stream_des_ops(&model, config.queue_cap).into_parts();
        let source = ChannelSource::new(rx).on_finish(Box::new(move || match handle.join() {
            Ok(Ok(_stats)) => Ok(()),
            Ok(Err(e)) => Err(SourceError(format!("DES producer: {e}"))),
            Err(_) => Err(SourceError("DES producer thread panicked".into())),
        }));
        black_box(drive_stream(source, loopback(), &config).expect("drives"));
    };
    // Warm both paths at a small scale so lazy one-time allocations
    // (thread stacks, rng tables, the loopback VFS) don't count as peaks.
    let small = bench_spec(2, 2);
    run_materialized(&small);
    run_streamed(&small);

    let mut ops = 0;
    let materialized_peak_bytes = peak_alloc_during(|| {
        ops = run_materialized(&spec);
    });
    assert!(
        ops >= 1_000_000,
        "the drive-memory contrast must cover ≥ 1M ops, got {ops}"
    );
    let streamed_peak_bytes = peak_alloc_during(|| run_streamed(&spec));
    DriveMemory {
        users: spec.run.n_users,
        sessions_per_user: spec.run.sessions_per_user,
        ops,
        queue_cap: config.queue_cap,
        materialized_peak_bytes,
        streamed_peak_bytes,
        materialized_to_streamed_ratio: materialized_peak_bytes as f64
            / streamed_peak_bytes.max(1) as f64,
    }
}

/// bytes/user at 1M users measured on the pre-arena driver (PR 7's
/// `Vec<UserState>`: per-user `Process`, `Option<Session>`, retry slots and
/// behaviour machine inline), on this container, same workload and backend
/// as [`measure_user_memory`]'s points. Committed as a constant so the
/// schema-8 reduction line keeps comparing against the historical layout
/// after the old code path is gone.
const PRE_REFACTOR_BYTES_PER_USER_1M: f64 = 470.9;

/// Schema 8: resident bytes/user and users/sec of the DES driver itself at
/// 1M and 10M users. The population is the "idle-heavy" regime the arena
/// diet targets — every category is shared, preexisting and gated to 2% of
/// sessions, so the file system stays O(shared files) while the user
/// arenas carry the full population (this is also how a million-user spec
/// must be written; see `specs/million-user.json`).
fn measure_user_memory() -> UserMemory {
    use uswg_core::{DesDriver, Owner, PopulationSpec, ResourcePool, UsageClass};
    let mut spec = bench_spec(64, 1);
    let mut heavy = spec.population.types()[0].0.clone();
    heavy.categories.retain(|usage| {
        usage.category.preexisting()
            && usage.category.owner == Owner::Other
            && usage.category.usage != UsageClass::ReadWrite
    });
    for usage in &mut heavy.categories {
        usage.pct_users = 0.02;
    }
    spec.population = PopulationSpec::single(heavy).expect("population builds");
    spec.run.record_ops = false;
    // The calendar queue is the documented backend beyond ~100k users; the
    // pre-refactor constant above was measured under the same backend.
    spec.run.scheduler = Some(SchedulerBackend::Calendar);
    let model = ModelConfig::default_local();
    let run_point = |users: usize| -> UserMemoryPoint {
        // Environment built outside the measured window: O(spec) state.
        let (vfs, catalog) = spec.generate_fs().expect("fs builds");
        let population = spec.compile().expect("compiles");
        let mut pool = ResourcePool::new();
        let built = model.build(&mut pool);
        let mut config = spec.run;
        config.n_users = users;
        let mut out = None;
        let start = Instant::now();
        // One trial: at 10M users the run is seconds long, far above timer
        // noise, and the peak is deterministic for a fixed seed.
        let driver_peak_bytes = peak_alloc_during(|| {
            out = Some(
                DesDriver::new()
                    .run_with_sink(
                        vfs,
                        catalog,
                        &population,
                        built,
                        pool,
                        &config,
                        SummarySink::new(),
                    )
                    .expect("runs"),
            );
        });
        let wall = start.elapsed().as_secs_f64();
        let (sink, _) = out.expect("ran");
        UserMemoryPoint {
            users,
            driver_peak_bytes,
            bytes_per_user: driver_peak_bytes as f64 / users as f64,
            wall_ms: wall * 1e3,
            users_per_sec: users as f64 / wall,
            sessions: sink.sessions,
            ops: sink.ops,
        }
    };
    // Warm the allocator and lazy tables off a small population first.
    let _ = run_point(10_000);
    let points = vec![run_point(1_000_000), run_point(10_000_000)];
    let bytes_per_user_1m = points[0].bytes_per_user;
    UserMemory {
        sessions_per_user: spec.run.sessions_per_user,
        pre_refactor_bytes_per_user_1m: PRE_REFACTOR_BYTES_PER_USER_1M,
        reduction_vs_pre_1m: PRE_REFACTOR_BYTES_PER_USER_1M / bytes_per_user_1m,
        points,
    }
}

/// Builds a ≥ 1M-op capture straight through the spill sink — strictly
/// increasing completion times, mixed op kinds, fault outcomes and
/// interleaved sessions: the index-friendly shape a long DES run spills,
/// without paying for a 1M-op simulation inside the bench.
fn analyze_capture(ops: u64) -> Vec<u8> {
    use uswg_core::{FileCategory, OpKind, OpRecord, SessionRecord};
    let mut sink = SpillSink::new(Vec::new()).expect("in-memory sink");
    for i in 0..ops {
        sink.record_op(&OpRecord {
            at: i,
            user: (i % 1024) as usize,
            session: (i % 13) as u32,
            op: OpKind::ALL[(i % 8) as usize],
            ino: i % 4096,
            bytes: (i * 37) % 8192,
            file_size: 1 << 20,
            response: (i * 13) % 900 + 1,
            category: FileCategory::REG_USER_RDONLY,
            retries: u32::from(i.is_multiple_of(97)),
            aborted: i.is_multiple_of(1009),
        });
        if i.is_multiple_of(1000) {
            sink.record_session(&SessionRecord {
                user: (i % 1024) as usize,
                user_type: (i % 3) as usize,
                session: (i / 1000) as u32,
                start: i.saturating_sub(1000),
                end: i,
                ops: 1000,
                files_referenced: 5,
                file_bytes_referenced: 1 << 22,
                bytes_accessed: i,
                bytes_read: i / 2,
                bytes_written: i.div_ceil(2),
                total_response: i * 3,
            });
        }
    }
    sink.finish().expect("seals")
}

/// Schema 9: the three `uswg analyze` regimes over the same ≥ 1M-op
/// capture — full sequential stream, indexed ~5% window (bytes read
/// counted through [`CountingReader`]) and indexed parallel full pass.
/// The parallel statistics are asserted equal to the sequential pass
/// before anything is timed, so the committed speedup can never come
/// from a merge that drops records.
fn measure_analyze() -> AnalyzeBench {
    use std::io::Cursor;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use uswg_core::{
        metrics::StreamLogStats, scan::scan_indexed, CountingReader, FrameIndex, ScanOptions,
        SpillReader, SpillRecord,
    };

    const OPS: u64 = 1 << 20;
    let bytes = analyze_capture(OPS);
    let index = FrameIndex::load(&mut Cursor::new(&bytes))
        .expect("trailer probe succeeds")
        .expect("sealed captures carry an index footer");
    let sequential = |counter: &Arc<AtomicU64>| -> StreamLogStats {
        let mut stats = StreamLogStats::new();
        let reader = SpillReader::new(CountingReader::new(
            Cursor::new(&bytes),
            Arc::clone(counter),
        ))
        .expect("opens");
        for record in reader {
            match record.expect("decodes") {
                SpillRecord::Op(op) => stats.record_op(&op),
                SpillRecord::Session(s) => stats.record_session(&s),
            }
        }
        stats
    };
    let seq_counter = Arc::new(AtomicU64::new(0));
    let full = sequential(&seq_counter);
    let sequential_bytes_read = seq_counter.load(Ordering::Relaxed);
    let sequential_ms = best_ms(|| {
        black_box(sequential(&Arc::new(AtomicU64::new(0))));
    });

    // A ~5% window in the middle of the [0, OPS) µs time line.
    let (since, until) = (OPS * 45 / 100, OPS * 50 / 100);
    let win_opts = ScanOptions {
        since: Some(since),
        until: Some(until),
        ..ScanOptions::default()
    };
    let windowed_scan = |counter: &Arc<AtomicU64>| {
        scan_indexed(&index, &win_opts, || {
            SpillReader::new(CountingReader::new(
                Cursor::new(&bytes),
                Arc::clone(counter),
            ))
        })
        .expect("windowed scan")
    };
    let win_counter = Arc::new(AtomicU64::new(0));
    let windowed = windowed_scan(&win_counter);
    let windowed_bytes_read = win_counter.load(Ordering::Relaxed);
    assert!(
        windowed_bytes_read * 10 < sequential_bytes_read,
        "a ~5% window must read well under a tenth of the file \
         ({windowed_bytes_read} of {sequential_bytes_read} bytes)"
    );
    let windowed_ms = best_ms(|| {
        black_box(windowed_scan(&Arc::new(AtomicU64::new(0))));
    });

    let parallel_jobs = 4;
    let par_opts = ScanOptions {
        jobs: parallel_jobs,
        ..ScanOptions::default()
    };
    let parallel_scan =
        || scan_indexed(&index, &par_opts, || SpillReader::new(Cursor::new(&bytes)));
    let parallel = parallel_scan().expect("parallel scan");
    assert_eq!(parallel.stats.ops, full.ops);
    assert_eq!(parallel.stats.sessions, full.sessions);
    assert_eq!(parallel.stats.data_bytes, full.data_bytes);
    assert!(
        (parallel.stats.response_per_byte() - full.response_per_byte()).abs() < 1e-9,
        "parallel analyze must reproduce the sequential statistics"
    );
    let parallel_ms = best_ms(|| {
        black_box(parallel_scan().expect("parallel scan"));
    });

    AnalyzeBench {
        ops: OPS as usize,
        sessions: full.sessions as usize,
        frames: index.frames(),
        file_bytes: bytes.len(),
        sequential_ms,
        sequential_bytes_read,
        window_fraction: (until - since) as f64 / OPS as f64,
        windowed_ms,
        windowed_bytes_read,
        windowed_frames_decoded: windowed.frames_decoded,
        windowed_to_sequential_byte_ratio: windowed_bytes_read as f64
            / sequential_bytes_read as f64,
        parallel_jobs,
        parallel_ms,
        parallel_speedup: sequential_ms / parallel_ms,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());

    eprintln!("measuring sampling paths...");
    let sampling = measure_sampling();
    eprintln!("measuring DES throughput...");
    let des = measure_des();
    eprintln!("measuring scheduler backends...");
    let scheduler = measure_scheduler();
    eprintln!("measuring sweep parallelism + pool scaling...");
    let (sweep, pool) = measure_sweep_and_pool();
    eprintln!("measuring sweep memory...");
    let memory = measure_memory();
    eprintln!("measuring single-run shard scaling...");
    let shard = measure_shards();
    eprintln!("measuring spill codecs...");
    let spill = measure_spill_codec();
    eprintln!("measuring sharded spill memory...");
    let shard_spill = measure_shard_spill_memory();
    eprintln!("measuring fault-injection overhead...");
    let faults = measure_faults();
    eprintln!("measuring drive memory (streamed vs materialized)...");
    let drive_memory = measure_drive_memory();
    eprintln!("measuring user-arena memory (1M/10M users)...");
    let user_memory = measure_user_memory();
    eprintln!("measuring analyze passes (sequential vs windowed vs parallel)...");
    let analyze = measure_analyze();

    let baseline = Baseline {
        schema: 9,
        sampling,
        des,
        scheduler,
        sweep,
        memory,
        pool,
        shard,
        spill,
        shard_spill,
        faults,
        drive_memory,
        user_memory,
        analyze,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("serializes");
    std::fs::write(&out_path, &json).expect("snapshot written");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
