//! Figure 5.10 — average response time per byte, 20% heavy / 80% light I/O
//! users, 1–6 concurrent users.

use uswg_bench::{run_user_sweep_figure, slope};
use uswg_core::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let points = run_user_sweep_figure(
        "Figure 5.10",
        "20% heavy / 80% light I/O users",
        presets::heavy_light_population(0.2)?,
    )?;
    println!("Measured slope: {:.2} µs/B per user.", slope(&points));
    Ok(())
}
