//! Figure 5.1 — examples of phase-type exponential distributions.

use uswg_core::{plot, presets, Distribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 5.1: Examples of phase-type exponential distributions.\n");
    for (label, dist) in presets::figure_5_1_examples()? {
        println!("{label}");
        println!(
            "  mean = {:.2}, std = {:.2}, support = [{:.1}, ~{:.1}]",
            dist.mean(),
            dist.std_dev(),
            dist.support_min(),
            dist.quantile(0.999)
        );
        println!("{}", plot::plot_pdf(&dist, 0.0, 100.0, 64, 12));
    }
    Ok(())
}
