//! Figure 5.2 — examples of multi-stage gamma distributions.

use uswg_core::{plot, presets, Distribution};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 5.2: Examples of multi-stage gamma distributions.\n");
    for (label, dist) in presets::figure_5_2_examples()? {
        println!("{label}");
        println!(
            "  mean = {:.2}, std = {:.2}, support = [{:.1}, ~{:.1}]",
            dist.mean(),
            dist.std_dev(),
            dist.support_min(),
            dist.quantile(0.999)
        );
        println!("{}", plot::plot_pdf(&dist, 0.0, 100.0, 64, 12));
    }
    Ok(())
}
