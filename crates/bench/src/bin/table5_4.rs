//! Table 5.4 — the types of users simulated in the experiments, as
//! configured in `uswg_core::presets` (think time distinguishes the types).

use uswg_core::{presets, Table};

fn main() {
    let mut table = Table::new(vec!["user type", "think time (µs)", "distribution"])
        .with_title("Table 5.4: Types of users simulated in experiments");
    for (spec, value) in [
        (
            presets::extremely_heavy_user(),
            presets::THINK_EXTREMELY_HEAVY,
        ),
        (presets::heavy_user(), presets::THINK_HEAVY),
        (presets::light_user(), presets::THINK_LIGHT),
    ] {
        let family = if value <= 0.0 {
            "constant"
        } else {
            "exponential"
        };
        table.row(vec![
            spec.name.clone(),
            format!("{value:.0}"),
            family.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "All three types share the Table 5.2 usage profile and the exp(1024 B)\n\
         access-size distribution; only the think time differs."
    );
}
