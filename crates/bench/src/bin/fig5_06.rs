//! Figure 5.6 — average response time per byte, all extremely heavy I/O
//! users (think time 0), 1–6 concurrent users.

use uswg_bench::{run_user_sweep_figure, slope};
use uswg_core::{presets, PopulationSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let points = run_user_sweep_figure(
        "Figure 5.6",
        "100% extremely heavy I/O users",
        PopulationSpec::single(presets::extremely_heavy_user())?,
    )?;
    println!(
        "Paper shape: steep, near-linear growth (all users compete for the\n\
         server all the time). Measured slope: {:.2} µs/B per user;\n\
         6-user/1-user ratio: {:.1}× (paper's curve spans roughly 2.5 to 14).",
        slope(&points),
        points[5].response_per_byte / points[0].response_per_byte
    );
    Ok(())
}
