//! Ablation — distributed NFS server count (the Section 4.2 distributed
//! file system extension): how many servers does it take to absorb the
//! Figure 5.6 saturation?

use uswg_bench::paper_workload;
use uswg_core::experiment::{user_sweep, ModelConfig};
use uswg_core::{presets, PopulationSpec, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec =
        paper_workload()?.with_population(PopulationSpec::single(presets::extremely_heavy_user())?);

    let mut table = Table::new(vec![
        "servers",
        "1 user µs/B",
        "3 users µs/B",
        "6 users µs/B",
        "6u/1u growth",
    ])
    .with_title("Ablation: distributed NFS server count under extremely heavy users");
    for servers in [1usize, 2, 3, 4] {
        let points = user_sweep(&spec, &ModelConfig::distributed_nfs(servers), [1, 3, 6])?;
        table.row(vec![
            servers.to_string(),
            format!("{:.3}", points[0].response_per_byte),
            format!("{:.3}", points[1].response_per_byte),
            format!("{:.3}", points[2].response_per_byte),
            format!(
                "{:.2}×",
                points[2].response_per_byte / points[0].response_per_byte
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Single-user cost is server-count independent; multi-user growth\n\
         flattens with each server until the shared network becomes the\n\
         bottleneck — adding servers beyond that point buys nothing, the\n\
         classic scaling story for late-80s NFS installations."
    );
    Ok(())
}
