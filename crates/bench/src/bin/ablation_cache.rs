//! Ablation — the NFS client block cache (off in the paper-default model):
//! how much does client caching bend the Figure 5.12 curve and the user
//! sweep? (DESIGN.md §5, ablation 1.)

use uswg_bench::paper_workload;
use uswg_core::experiment::{access_size_sweep, user_sweep, ModelConfig};
use uswg_core::{NfsParams, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = paper_workload()?;
    let without = ModelConfig::Nfs(NfsParams::default());
    let with = ModelConfig::Nfs(NfsParams::with_cache(8_192));

    println!("Ablation: NFS client block cache (8192-block LRU vs none)\n");

    let sizes = [128.0, 512.0, 1_024.0, 2_048.0];
    let p_off = access_size_sweep(&spec, &without, sizes)?;
    let p_on = access_size_sweep(&spec, &with, sizes)?;
    let mut table = Table::new(vec![
        "mean access (B)",
        "resp/byte no-cache",
        "resp/byte cache",
        "saving",
    ])
    .with_title("Access-size sweep (Figure 5.12 conditions)");
    for (a, b) in p_off.iter().zip(&p_on) {
        table.row(vec![
            format!("{:.0}", a.x),
            format!("{:.3}", a.response_per_byte),
            format!("{:.3}", b.response_per_byte),
            format!(
                "{:.0}%",
                100.0 * (1.0 - b.response_per_byte / a.response_per_byte)
            ),
        ]);
    }
    println!("{}", table.render());

    let u_off = user_sweep(&spec, &without, [1, 3, 6])?;
    let u_on = user_sweep(&spec, &with, [1, 3, 6])?;
    let mut table = Table::new(vec![
        "users",
        "resp/byte no-cache",
        "resp/byte cache",
        "saving",
    ])
    .with_title("User sweep (Table 5.3 conditions)");
    for (a, b) in u_off.iter().zip(&u_on) {
        table.row(vec![
            format!("{}", a.x as usize),
            format!("{:.3}", a.response_per_byte),
            format!("{:.3}", b.response_per_byte),
            format!(
                "{:.0}%",
                100.0 * (1.0 - b.response_per_byte / a.response_per_byte)
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The cache absorbs re-reads (access-per-byte > 1 in Table 5.2), so\n\
         it helps most exactly where the workload re-touches bytes; writes\n\
         are write-through and keep the server disk busy either way."
    );
    Ok(())
}
