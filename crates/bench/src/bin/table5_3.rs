//! Table 5.3 — mean and standard deviation of access size (bytes) and
//! response time (microseconds) of file access system calls, for 1–6
//! concurrent users. Paper columns printed alongside for comparison.

use uswg_bench::{paper_workload, PAPER_TABLE_5_3};
use uswg_core::experiment::{user_sweep, ModelConfig};
use uswg_core::{presets, PopulationSpec, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Section 5.1 measurement: heavy I/O users (think 5 000 µs), access
    // size exp(1024 B), the computer used by 1..6 users simultaneously.
    let spec = paper_workload()?.with_population(PopulationSpec::single(presets::heavy_user())?);
    let points = user_sweep(&spec, &ModelConfig::default_nfs(), 1..=6)?;

    let mut table = Table::new(vec![
        "users",
        "access size mean(std)",
        "paper access size",
        "response mean(std)",
        "paper response",
    ])
    .with_title(
        "Table 5.3: access size (bytes) and response time (µs) of file access system calls",
    );
    for (p, &(users, pa_m, pa_s, pr_m, pr_s)) in points.iter().zip(PAPER_TABLE_5_3.iter()) {
        table.row(vec![
            users.to_string(),
            p.access_size.mean_std(),
            format!("{pa_m:.2}({pa_s:.2})"),
            p.response.mean_std(),
            format!("{pr_m:.2}({pr_s:.2})"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shape checks: access size is flat in the number of users with std of\n\
         the order of the mean (the exponential signature); response time\n\
         grows monotonically with users. The paper's response std is far\n\
         larger than its mean because a real NFS server occasionally stalls\n\
         for tens of milliseconds; the queueing model's tails are lighter."
    );
    Ok(())
}
