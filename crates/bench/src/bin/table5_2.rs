//! Table 5.2 — user characterization by file category: the specification
//! versus what simulated sessions actually did.

use uswg_bench::paper_workload;
use uswg_core::{metrics, presets, FillPattern, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = paper_workload()?;
    spec.run.n_users = 6;
    spec.fsc = spec.fsc.with_fill(FillPattern::Sparse);

    let log = spec.run_direct()?;
    let observations = metrics::category_observations(&log);

    let mut table = Table::new(vec![
        "file category",
        "apb spec",
        "apb meas",
        "size spec",
        "size meas",
        "files spec",
        "files meas",
        "%users spec",
        "%sess meas",
    ])
    .with_title("Table 5.2: User characterization by file category (spec vs measured)");
    for &(category, apb, size, files, pct) in presets::TABLE_5_2.iter() {
        let obs = observations.iter().find(|o| o.category == category);
        let (apb_m, size_m, files_m, pct_m) = match obs {
            Some(o) => (
                format!("{:.2}", o.access_per_byte),
                format!("{:.0}", o.mean_file_size),
                format!("{:.1}", o.mean_files),
                format!("{:.0}", 100.0 * o.pct_sessions),
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        table.row(vec![
            category.to_string(),
            format!("{apb:.2}"),
            apb_m,
            format!("{size:.0}"),
            size_m,
            format!("{files:.1}"),
            files_m,
            format!("{pct:.0}"),
            pct_m,
        ]);
    }
    println!("{}", table.render());
    println!(
        "Sessions: {}. Measured means track the spec within sampling noise;\n\
         the files column runs below spec when the generated population is\n\
         smaller than a session asks for (picks are with replacement but\n\
         unique files are counted), and access-per-byte runs slightly below\n\
         spec because budgets are rounded and empty files contribute zero.",
        log.sessions().len()
    );
    Ok(())
}
