//! Figure 5.12 — average access time per byte under different access sizes
//! of file I/O system calls (means 128 → 2048 bytes), extremely heavy I/O
//! user load.

use uswg_bench::paper_workload;
use uswg_core::experiment::{access_size_sweep, ModelConfig};
use uswg_core::{plot, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = paper_workload()?;
    let sizes = [128.0, 256.0, 384.0, 512.0, 768.0, 1_024.0, 1_536.0, 2_048.0];
    let points = access_size_sweep(&spec, &ModelConfig::default_nfs(), sizes)?;

    let mut table = Table::new(vec![
        "mean access size (B)",
        "resp/byte (µs/B)",
        "measured access B mean(std)",
        "response µs mean(std)",
    ])
    .with_title("Figure 5.12: response time per byte vs access size (extremely heavy user)");
    for p in &points {
        table.row(vec![
            format!("{:.0}", p.x),
            format!("{:.3}", p.response_per_byte),
            p.access_size.mean_std(),
            p.response.mean_std(),
        ]);
    }
    println!("{}", table.render());
    let series: Vec<(f64, f64)> = points.iter().map(|p| (p.x, p.response_per_byte)).collect();
    println!("{}", plot::plot_histogram(&series, 48));
    println!(
        "Paper shape: convex decay — per-call overheads amortize over larger\n\
         accesses ('it is better to have large access sizes for file I/O\n\
         system calls, which is why most language libraries want to keep a\n\
         buffer for each file'). Measured 128 B / 2048 B cost ratio: {:.1}×.",
        points[0].response_per_byte / points.last().expect("non-empty").response_per_byte
    );
    Ok(())
}
