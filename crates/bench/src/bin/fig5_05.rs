//! Figure 5.5 — distribution of the number of files referenced per session
//! over 600 simulated login sessions, before and after smoothing.

use uswg_bench::{paper_workload, seed};
use uswg_core::metrics::{session_series, SessionMetric};
use uswg_core::{plot, FillPattern, Histogram, Summary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = paper_workload()?;
    spec.run.n_users = 6;
    spec.run.sessions_per_user = 100;
    spec.run.record_ops = false;
    spec.run.seed = seed();
    spec.fsc = spec.fsc.with_fill(FillPattern::Sparse);

    let log = spec.run_direct()?;
    let series = session_series(&log, SessionMetric::FilesReferenced);
    let s = Summary::of(&series);
    println!(
        "Figure 5.5: Average number of files referenced ({} sessions; mean\n\
         {:.1}, std {:.1}). Paper shape: right-skewed, mode below ~20 files,\n\
         tail to ~100.\n",
        s.n, s.mean, s.std_dev
    );
    let hist = Histogram::new(&series, 0.0, 100.0, 25);
    println!("(a) Before smoothing");
    println!("{}", plot::plot_histogram(&hist.bins(), 50));
    println!("(b) After smoothing");
    println!("{}", plot::plot_histogram(&hist.smoothed(1).bins(), 50));
    Ok(())
}
