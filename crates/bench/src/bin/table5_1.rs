//! Table 5.1 — file characterization by file category: the specification
//! versus the population the File System Creator actually built.

use uswg_bench::paper_workload;
use uswg_core::{presets, FillPattern, Table};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = paper_workload()?;
    // A large population so sample means are tight.
    spec.run.n_users = 6;
    spec.fsc = spec
        .fsc
        .with_files_per_user(600)?
        .with_shared_files(1_200)?
        .with_fill(FillPattern::Sparse);
    spec.vfs.max_inodes = 1 << 20;

    let (vfs, catalog) = spec.generate_fs()?;
    let characterization = catalog.characterize();
    let live: usize = characterization.values().map(|&(n, _)| n).sum();

    let mut table = Table::new(vec![
        "file category",
        "paper size",
        "built size",
        "paper %",
        "built %",
        "files",
    ])
    .with_title("Table 5.1: File characterization by file category (spec vs built)");
    for &(category, mean_size, pct) in presets::TABLE_5_1.iter() {
        let (count, measured) = characterization.get(&category).copied().unwrap_or((0, 0.0));
        let built_pct = 100.0 * count as f64 / live as f64;
        let note = if category.preexisting() {
            ""
        } else {
            " (runtime)"
        };
        table.row(vec![
            format!("{category}{note}"),
            format!("{mean_size:.0}"),
            if count == 0 {
                "-".into()
            } else {
                format!("{measured:.0}")
            },
            format!("{pct:.1}"),
            if count == 0 {
                "-".into()
            } else {
                format!("{built_pct:.1}")
            },
            count.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "NEW/TEMP categories are created by the simulated users at run time\n\
         (Section 4.1.2 only materializes accessed, pre-existing files), so\n\
         their built share appears as '-' here. File system: {} inodes, {}\n\
         blocks free of {}.",
        vfs.statfs().used_inodes,
        vfs.statfs().free_blocks,
        vfs.statfs().total_blocks
    );
    Ok(())
}
