//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every artifact of the paper's Chapter 5 has one binary in `src/bin`:
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig5_01` | Figure 5.1 — phase-type exponential examples |
//! | `fig5_02` | Figure 5.2 — multi-stage gamma examples |
//! | `table5_1` | Table 5.1 — file characterization by category |
//! | `table5_2` | Table 5.2 — user characterization by category |
//! | `table5_3` | Table 5.3 — access size / response time vs users |
//! | `table5_4` | Table 5.4 — the simulated user types |
//! | `fig5_03`–`fig5_05` | usage-distribution histograms (600 sessions) |
//! | `fig5_06`–`fig5_11` | response time/byte vs users per population |
//! | `fig5_12` | response time/byte vs access size |
//! | `ablation_cache` | client block cache on/off (design-choice ablation) |
//! | `ablation_cdf_resolution` | CDF-table resolution vs accuracy/memory |
//! | `ablation_servers` | distributed-NFS server count vs saturation |
//!
//! Beyond the paper artifacts, `bench_baseline` writes the committed
//! `BENCH_baseline.json` perf snapshot (schema 3: sampling, DES
//! throughput, scheduler backends, sweep parallelism, sweep memory under
//! a counting allocator, and work-stealing pool scaling).
//!
//! Scale can be reduced for smoke runs with `USWG_SESSIONS` (sessions per
//! user, default 50 — the paper's per-point count) and `USWG_SEED`.

#![warn(missing_docs)]

use uswg_core::experiment::{user_sweep, ModelConfig, SweepPoint};
use uswg_core::{
    CoreError, PopulationSpec, Scheduler, SchedulerBackend, Simulation, Table, WorkloadSpec, World,
};

/// The classic hold-model workout for scheduler benchmarking: every handled
/// event reschedules itself a pseudo-random (LCG) delay ahead, so the
/// pending population stays exactly constant while the queue churns — the
/// pure cost of one pop + one push at a given population, with zero
/// workload logic attached. Shared by the `scheduler_hold` criterion group
/// and the `bench_baseline` snapshot so their numbers measure the same
/// workout.
#[derive(Debug)]
pub struct HoldModel {
    state: u64,
}

impl World for HoldModel {
    type Event = ();
    #[inline]
    fn handle(&mut self, (): (), sched: &mut Scheduler<()>) {
        self.state = lcg(self.state);
        sched.schedule(self.state % 10_000 + 1, ());
    }
}

#[inline]
fn lcg(state: u64) -> u64 {
    state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// A simulation pre-loaded with `pending` hold events at deterministic
/// LCG-jittered offsets, with the queue geometry warmed past its growth
/// phase (one batch already run).
pub fn hold_simulation(backend: SchedulerBackend, pending: usize) -> Simulation<HoldModel> {
    let mut sim = Simulation::with_backend(HoldModel { state: 0x5EED }, backend, pending);
    let mut state = 0x9E37_79B9u64;
    for _ in 0..pending {
        state = lcg(state);
        sim.schedule(state % 10_000, ());
    }
    sim.run_steps(HOLD_BATCH);
    sim
}

/// Events per measured hold batch.
pub const HOLD_BATCH: u64 = 10_000;

/// Sessions per run point (the paper: "each response time is the mean value
/// during 50 login sessions"), overridable via `USWG_SESSIONS`.
pub fn sessions_per_user() -> u32 {
    std::env::var("USWG_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// Base RNG seed, overridable via `USWG_SEED`.
pub fn seed() -> u64 {
    std::env::var("USWG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1991)
}

/// The full-scale paper workload: Table 5.1 file system, Table 5.2 usage.
///
/// # Errors
///
/// Propagates preset validation errors (none in practice).
pub fn paper_workload() -> Result<WorkloadSpec, CoreError> {
    let mut spec = WorkloadSpec::paper_default()?;
    spec.run.sessions_per_user = sessions_per_user();
    spec.run.seed = seed();
    Ok(spec)
}

/// Runs one Figure 5.6–5.11 panel: a 1–6 user sweep of the given population
/// against the default NFS model, printing the series and an ASCII curve.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run_user_sweep_figure(
    figure: &str,
    population_label: &str,
    population: PopulationSpec,
) -> Result<Vec<SweepPoint>, CoreError> {
    let spec = paper_workload()?.with_population(population);
    let points = user_sweep(&spec, &ModelConfig::default_nfs(), 1..=6)?;
    print_user_sweep(figure, population_label, &points);
    Ok(points)
}

/// Prints a user-sweep series as a table plus a bar curve.
pub fn print_user_sweep(figure: &str, label: &str, points: &[SweepPoint]) {
    let mut table = Table::new(vec![
        "users",
        "resp/byte (µs/B)",
        "access size B mean(std)",
        "response µs mean(std)",
        "sessions",
    ])
    .with_title(format!(
        "{figure}: average response time per byte — {label}"
    ));
    for p in points {
        table.row(vec![
            format!("{}", p.x as usize),
            format!("{:.3}", p.response_per_byte),
            p.access_size.mean_std(),
            p.response.mean_std(),
            p.sessions.to_string(),
        ]);
    }
    println!("{}", table.render());
    let series: Vec<(f64, f64)> = points.iter().map(|p| (p.x, p.response_per_byte)).collect();
    println!("{}", uswg_core::plot::plot_histogram(&series, 48));
}

/// Estimates the slope of a sweep by least squares, for shape checks.
pub fn slope(points: &[SweepPoint]) -> f64 {
    let n = points.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mx = points.iter().map(|p| p.x).sum::<f64>() / n;
    let my = points.iter().map(|p| p.response_per_byte).sum::<f64>() / n;
    let cov: f64 = points
        .iter()
        .map(|p| (p.x - mx) * (p.response_per_byte - my))
        .sum();
    let var: f64 = points.iter().map(|p| (p.x - mx) * (p.x - mx)).sum();
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

/// Paper reference values for Table 5.3: `(users, access size mean, access
/// size std, response mean, response std)`.
pub const PAPER_TABLE_5_3: [(usize, f64, f64, f64, f64); 6] = [
    (1, 946.71, 956.76, 1_284.83, 4_201.52),
    (2, 936.06, 945.16, 1_716.26, 7_026.62),
    (3, 932.80, 946.87, 2_120.99, 13_308.12),
    (4, 956.12, 965.49, 2_447.55, 16_834.38),
    (5, 947.98, 948.53, 2_960.32, 16_197.86),
    (6, 928.66, 935.09, 3_494.30, 30_059.28),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_env() {
        // Not asserting exact values (the env may be set by a caller), just
        // that parsing yields something positive.
        assert!(sessions_per_user() > 0);
        let _ = seed();
    }

    #[test]
    fn slope_of_line_is_exact() {
        let mk = |x: f64, y: f64| SweepPoint {
            x,
            response_per_byte: y,
            access_size: uswg_core::Summary::of(&[]),
            response: uswg_core::Summary::of(&[]),
            sessions: 0,
        };
        let pts = vec![mk(1.0, 2.0), mk(2.0, 4.0), mk(3.0, 6.0)];
        assert!((slope(&pts) - 2.0).abs() < 1e-12);
        assert_eq!(slope(&pts[..1]), 0.0);
    }

    #[test]
    fn paper_workload_builds() {
        let spec = paper_workload().unwrap();
        assert_eq!(spec.fsc.categories.len(), 9);
    }
}
