//! Plain-text table rendering for experiment reports.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Flush left (labels).
    Left,
    /// Flush right (numbers).
    Right,
}

/// A simple text table: headers plus rows of strings.
///
/// # Example
///
/// ```
/// use uswg_analyze::Table;
///
/// let mut t = Table::new(vec!["users", "response time"]);
/// t.row(vec!["1".into(), "1284.83(4201.52)".into()]);
/// let text = t.render();
/// assert!(text.contains("users"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (override with
    /// [`Table::with_aligns`]).
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if let Some(first) = aligns.first_mut() {
            *first = Align::Left;
        }
        Self {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets per-column alignment.
    ///
    /// # Panics
    ///
    /// Panics if the alignment count does not match the header count.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "one alignment per column");
        self.aligns = aligns;
        self
    }

    /// Sets a title rendered above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "one cell per column");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header rule, column padding and the
    /// configured alignment.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.len());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(cell);
                    }
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned number column.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn title_is_rendered_first() {
        let mut t = Table::new(vec!["x"]).with_title("Table 5.3");
        t.row(vec!["1".into()]);
        assert!(t.render().starts_with("Table 5.3\n"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "one cell per column")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn custom_alignment() {
        let mut t = Table::new(vec!["n", "label"]).with_aligns(vec![Align::Right, Align::Left]);
        t.row(vec!["7".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("7  x"));
    }
}
