//! Indexed spill scans: the windowed, sampled and parallel passes behind
//! `uswg analyze --since/--until/--sample/--jobs`.
//!
//! A sequential `uswg analyze` streams the whole file. With a
//! [`FrameIndex`] loaded from the footer, [`scan_indexed`] instead selects
//! the frames whose completion-time range overlaps the query window
//! (optionally thinned to every k-th frame), seeks straight to them, and
//! folds only those records into a [`StreamLogStats`] — O(window), not
//! O(file). With `jobs > 1` the selected frames split into near-equal
//! chunks fanned across the global stealpool budget; each worker opens its
//! own reader, accumulates independently, and the chunks merge in file
//! order via [`StreamLogStats::merge`], matching the sequential pass to
//! floating-point roundoff.

use crate::metrics::StreamLogStats;
use std::io::{self, Read, Seek, SeekFrom};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use uswg_usim::{FrameIndex, FrameIndexEntry, LogSink, SpillReader, SpillRecord};

/// What an indexed scan should select and how it should run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanOptions {
    /// Keep records completing at or after this time, µs.
    pub since: Option<u64>,
    /// Keep records completing at or before this time, µs.
    pub until: Option<u64>,
    /// Decode only every k-th of the selected frames (`None` or `Some(1)`
    /// decodes them all) — a cheap estimate over a huge capture.
    pub sample: Option<u64>,
    /// Worker threads to request from the global stealpool budget
    /// (`0` or `1` runs sequentially on the calling thread).
    pub jobs: usize,
}

impl ScanOptions {
    /// Whether a decoded record falls inside the `[since, until]` window.
    /// Frames are selected by their index *range*, so a frame straddling a
    /// window edge still carries out-of-window records; this is the
    /// record-level filter applied after decoding. Ops filter on their
    /// completion time `at`, sessions on `end` — the same times the index
    /// entries aggregate.
    pub fn record_in_window(&self, record: &SpillRecord) -> bool {
        let t = match record {
            SpillRecord::Op(op) => op.at,
            SpillRecord::Session(s) => s.end,
        };
        self.since.is_none_or(|s| t >= s) && self.until.is_none_or(|u| t <= u)
    }
}

/// The result of an indexed scan, with enough accounting to report how
/// much of the file the index let the pass skip.
#[derive(Debug)]
pub struct ScanOutcome {
    /// The folded statistics over every in-window record of the decoded
    /// frames.
    pub stats: StreamLogStats,
    /// Frames in the file, per the index.
    pub frames_total: usize,
    /// Frames actually decoded (selected by window, thinned by sampling).
    pub frames_decoded: usize,
}

/// Runs an indexed scan: selects the frames of `index` overlapping the
/// window, thins them to every k-th if sampling, fans contiguous frame
/// runs across `opts.jobs` workers (each opening its own reader through
/// `open`), and merges the per-chunk [`StreamLogStats`] in file order.
///
/// `open` is called once per worker (once total when sequential); each
/// reader only ever seeks to frame offsets taken from the index, so the
/// per-frame checksums still guard every decoded byte.
///
/// # Errors
///
/// Propagates reader-open and decode errors. An index that disagrees with
/// the file (a seek landing mid-frame, a frame ending early) surfaces as
/// the decode error the misaligned read produces.
pub fn scan_indexed<R, F>(
    index: &FrameIndex,
    opts: &ScanOptions,
    open: F,
) -> io::Result<ScanOutcome>
where
    R: Read + Seek,
    F: Fn() -> io::Result<SpillReader<R>> + Sync,
{
    let sampled = select_frames(index, opts);
    let frames_decoded = sampled.len();
    let workers = opts.jobs.max(1);
    let chunks: Vec<&[(usize, FrameIndexEntry)]> = split_even(&sampled, workers);
    let stats = if chunks.len() <= 1 {
        let mut stats = StreamLogStats::new();
        if let Some(chunk) = chunks.first() {
            stats = scan_chunk(&open, chunk, opts)?;
        }
        stats
    } else {
        let slots: Vec<Mutex<Option<io::Result<StreamLogStats>>>> =
            chunks.iter().map(|_| Mutex::new(None)).collect();
        stealpool::run_indexed(workers, chunks.len(), |i| {
            let result = scan_chunk(&open, chunks[i], opts);
            *slots[i].lock().expect("scan slot poisoned") = Some(result);
            true
        });
        let mut stats = StreamLogStats::new();
        for slot in slots {
            let chunk_stats = slot
                .into_inner()
                .expect("scan slot poisoned")
                .expect("stealpool runs every task")?;
            stats.merge(&chunk_stats);
        }
        stats
    };
    Ok(ScanOutcome {
        stats,
        frames_total: index.frames(),
        frames_decoded,
    })
}

/// The frames of `index` overlapping the window, thinned to every k-th
/// when sampling — the selection both [`scan_indexed`] and
/// [`visit_indexed`] decode.
pub fn select_frames(index: &FrameIndex, opts: &ScanOptions) -> Vec<(usize, FrameIndexEntry)> {
    let selected: Vec<(usize, FrameIndexEntry)> = index
        .entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.overlaps(opts.since, opts.until))
        .map(|(i, e)| (i, *e))
        .collect();
    match opts.sample {
        Some(k) if k > 1 => selected.into_iter().step_by(k as usize).collect(),
        _ => selected,
    }
}

/// Sequentially decodes the frames [`select_frames`] picks and passes
/// every in-window record to `visit`, in file order. Returns
/// `(frames_total, frames_decoded)`. This is the record-visitor core under
/// [`scan_indexed`], exposed for passes (like the fit collector) that fold
/// into something other than a [`StreamLogStats`].
///
/// # Errors
///
/// Propagates reader-open and decode errors, exactly as [`scan_indexed`].
pub fn visit_indexed<R, F, V>(
    index: &FrameIndex,
    opts: &ScanOptions,
    open: F,
    mut visit: V,
) -> io::Result<(usize, usize)>
where
    R: Read + Seek,
    F: Fn() -> io::Result<SpillReader<R>>,
    V: FnMut(&SpillRecord),
{
    let sampled = select_frames(index, opts);
    let frames_decoded = sampled.len();
    visit_frames(&open, &sampled, opts, &mut visit)?;
    Ok((index.frames(), frames_decoded))
}

/// Splits `frames` into at most `parts` near-equal contiguous chunks
/// (never an empty chunk; fewer chunks than `parts` when frames are few).
fn split_even(
    frames: &[(usize, FrameIndexEntry)],
    parts: usize,
) -> Vec<&[(usize, FrameIndexEntry)]> {
    if frames.is_empty() {
        return Vec::new();
    }
    let parts = parts.clamp(1, frames.len());
    let base = frames.len() / parts;
    let extra = frames.len() % parts;
    let mut chunks = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        chunks.push(&frames[start..start + len]);
        start += len;
    }
    chunks
}

/// Decodes one worker's frames: consecutive index positions coalesce into
/// a single seek + multi-frame budget (adjacent frames abut on disk), so a
/// dense window costs one seek, not one per frame.
fn scan_chunk<R, F>(
    open: &F,
    frames: &[(usize, FrameIndexEntry)],
    opts: &ScanOptions,
) -> io::Result<StreamLogStats>
where
    R: Read + Seek,
    F: Fn() -> io::Result<SpillReader<R>>,
{
    let mut stats = StreamLogStats::new();
    visit_frames(open, frames, opts, &mut |record| match record {
        SpillRecord::Op(op) => stats.record_op(op),
        SpillRecord::Session(s) => stats.record_session(s),
    })?;
    Ok(stats)
}

/// Streams every in-window record of `frames` to `visit`, coalescing
/// consecutive index positions into a single seek + multi-frame budget
/// (adjacent frames abut on disk), so a dense window costs one seek, not
/// one per frame.
fn visit_frames<R, F, V>(
    open: &F,
    frames: &[(usize, FrameIndexEntry)],
    opts: &ScanOptions,
    visit: &mut V,
) -> io::Result<()>
where
    R: Read + Seek,
    F: Fn() -> io::Result<SpillReader<R>>,
    V: FnMut(&SpillRecord),
{
    if frames.is_empty() {
        return Ok(());
    }
    let mut reader = open()?;
    let mut i = 0;
    while i < frames.len() {
        let mut j = i + 1;
        while j < frames.len() && frames[j].0 == frames[j - 1].0 + 1 {
            j += 1;
        }
        let run = &frames[i..j];
        reader.seek_to_frames(run[0].1.offset, run.len() as u64)?;
        for record in &mut reader {
            let record = record?;
            if opts.record_in_window(&record) {
                visit(&record);
            }
        }
        i = j;
    }
    Ok(())
}

/// A [`Read`]`+`[`Seek`] wrapper that counts the bytes actually read
/// through it — how the tests and the bench prove a windowed scan's I/O is
/// O(window): wrap the file, run the pass, read the counter.
#[derive(Debug)]
pub struct CountingReader<R> {
    inner: R,
    bytes: Arc<AtomicU64>,
}

impl<R> CountingReader<R> {
    /// Wraps `inner`; every byte read adds to `bytes`.
    pub fn new(inner: R, bytes: Arc<AtomicU64>) -> Self {
        Self { inner, bytes }
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl<R: Seek> Seek for CountingReader<R> {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}
