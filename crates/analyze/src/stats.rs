//! Summary statistics.

use serde::{Deserialize, Serialize};

/// Mean, spread and extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns the zero summary for empty input.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Summarizes an iterator of integers (common for byte/µs counts).
    pub fn of_counts<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let collected: Vec<f64> = values.into_iter().map(|v| v as f64).collect();
        Self::of(&collected)
    }

    /// The `p`-quantile (0–1) of a sample by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(values: &[f64], p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile probability out of range"
        );
        if values.is_empty() {
            return 0.0;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let pos = p * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
        }
    }

    /// Formats as the paper's `mean(std)` notation.
    pub fn mean_std(&self) -> String {
        format!("{:.2}({:.2})", self.mean, self.std_dev)
    }
}

/// A [`Summary`] built one sample at a time: the streaming counterpart of
/// [`Summary::of`] for inputs too large to collect (spill files, merged
/// shard streams). Means come from an exact running sum (so they match the
/// post-hoc `sum / n` to the last bit); the spread uses Welford's running
/// M2, which stays numerically stable where the naive `Σx² − (Σx)²/n` form
/// loses every digit at large n with small variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingSummary {
    n: u64,
    sum: f64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingSummary {
    fn default() -> Self {
        Self {
            n: 0,
            sum: 0.0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StreamingSummary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Samples folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Folds another accumulator in, as if its samples had been pushed
    /// here: Chan's parallel combination of Welford M2 values, plus the
    /// exact running sum. This is what lets a parallel spill pass split a
    /// file into disjoint frame ranges, accumulate each independently, and
    /// recombine — the merged moments match a sequential pass over the
    /// same samples to floating-point roundoff.
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The finished [`Summary`] (the zero summary while empty, matching
    /// `Summary::of(&[])`).
    pub fn summary(&self) -> Summary {
        if self.n == 0 {
            return Summary::of(&[]);
        }
        let var = if self.n > 1 {
            (self.m2 / (self.n - 1) as f64).max(0.0)
        } else {
            0.0
        };
        Summary {
            n: self.n as usize,
            mean: self.sum / self.n as f64,
            std_dev: var.sqrt(),
            min: self.min,
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_value_has_zero_spread() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn of_counts_converts() {
        let s = Summary::of_counts([1u64, 2, 3]);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(Summary::quantile(&v, 0.0), 1.0);
        assert_eq!(Summary::quantile(&v, 1.0), 5.0);
        assert_eq!(Summary::quantile(&v, 0.5), 3.0);
        assert!((Summary::quantile(&v, 0.25) - 2.0).abs() < 1e-12);
        assert_eq!(Summary::quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn mean_std_format() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.mean_std(), "2.00(1.41)");
    }

    #[test]
    fn streaming_summary_matches_batch() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = StreamingSummary::new();
        for &v in &values {
            acc.push(v);
        }
        let streamed = acc.summary();
        let batch = Summary::of(&values);
        assert_eq!(streamed.n, batch.n);
        assert_eq!(acc.count(), values.len() as u64);
        assert!((streamed.mean - batch.mean).abs() < 1e-12);
        assert!((streamed.std_dev - batch.std_dev).abs() < 1e-12);
        assert_eq!(streamed.min, batch.min);
        assert_eq!(streamed.max, batch.max);
    }

    #[test]
    fn merged_streaming_summaries_match_a_single_pass() {
        let values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        // Every split point, including the degenerate empty halves.
        for split in [0, 1, 250, 500, 999, 1000] {
            let mut left = StreamingSummary::new();
            let mut right = StreamingSummary::new();
            for &v in &values[..split] {
                left.push(v);
            }
            for &v in &values[split..] {
                right.push(v);
            }
            left.merge(&right);
            let merged = left.summary();
            let mut whole = StreamingSummary::new();
            for &v in &values {
                whole.push(v);
            }
            let sequential = whole.summary();
            assert_eq!(merged.n, sequential.n, "split {split}");
            assert!(
                (merged.mean - sequential.mean).abs() < 1e-9,
                "split {split}"
            );
            assert!(
                (merged.std_dev - sequential.std_dev).abs() < 1e-9,
                "split {split}"
            );
            assert_eq!(merged.min, sequential.min);
            assert_eq!(merged.max, sequential.max);
        }
    }

    #[test]
    fn merging_empties_is_identity() {
        let mut a = StreamingSummary::new();
        a.merge(&StreamingSummary::new());
        assert_eq!(a.summary(), Summary::of(&[]));
        let mut b = StreamingSummary::new();
        b.push(3.0);
        let snapshot = b.summary();
        b.merge(&StreamingSummary::new());
        assert_eq!(b.summary(), snapshot);
        let mut c = StreamingSummary::new();
        c.merge(&b);
        assert_eq!(c.summary(), snapshot);
    }

    #[test]
    fn streaming_summary_empty_and_single() {
        assert_eq!(StreamingSummary::new().summary(), Summary::of(&[]));
        let mut acc = StreamingSummary::new();
        acc.push(42.0);
        let s = acc.summary();
        assert_eq!(s.n, 1);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }
}
