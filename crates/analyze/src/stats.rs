//! Summary statistics.

use serde::{Deserialize, Serialize};

/// Mean, spread and extrema of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator).
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns the zero summary for empty input.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Summarizes an iterator of integers (common for byte/µs counts).
    pub fn of_counts<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let collected: Vec<f64> = values.into_iter().map(|v| v as f64).collect();
        Self::of(&collected)
    }

    /// The `p`-quantile (0–1) of a sample by linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(values: &[f64], p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile probability out of range"
        );
        if values.is_empty() {
            return 0.0;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let pos = p * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
        }
    }

    /// Formats as the paper's `mean(std)` notation.
    pub fn mean_std(&self) -> String {
        format!("{:.2}({:.2})", self.mean, self.std_dev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn single_value_has_zero_spread() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
    }

    #[test]
    fn of_counts_converts() {
        let s = Summary::of_counts([1u64, 2, 3]);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(Summary::quantile(&v, 0.0), 1.0);
        assert_eq!(Summary::quantile(&v, 1.0), 5.0);
        assert_eq!(Summary::quantile(&v, 0.5), 3.0);
        assert!((Summary::quantile(&v, 0.25) - 2.0).abs() < 1e-12);
        assert_eq!(Summary::quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn mean_std_format() {
        let s = Summary::of(&[1.0, 3.0]);
        assert_eq!(s.mean_std(), "2.00(1.41)");
    }
}
