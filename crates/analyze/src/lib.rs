//! The Usage Analyzer.
//!
//! "There is also a program, Usage Analyzer, for users to analyze the
//! results and display them graphically." (Section 5.1) — this crate is that
//! program: it turns a [`UsageLog`](uswg_usim::UsageLog) into the summary
//! statistics, histograms (with the paper's before/after smoothing views)
//! and per-system-call tables that Chapter 5 of the paper reports.
//!
//! * [`Summary`] — mean / standard deviation / extrema of a sample;
//! * [`Histogram`] — fixed-width bins plus moving-average [`Histogram::smoothed`];
//! * [`metrics`] — per-session usage series (access-per-byte, file size,
//!   files referenced) and per-syscall access-size/response summaries;
//! * [`Table`] — plain-text table rendering for experiment reports.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fit;
mod histogram;
pub mod metrics;
pub mod scan;
mod stats;
mod table;

pub use fit::{collect_fit, FitCollector, FitObservation, FitOutcome, Reservoir};
pub use histogram::Histogram;
pub use scan::{CountingReader, ScanOptions, ScanOutcome};
pub use stats::{StreamingSummary, Summary};
pub use table::{Align, Table};
