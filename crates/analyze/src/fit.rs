//! Trace fitting: the streaming accumulators behind `uswg fit`.
//!
//! [`collect_fit`] reads a spill capture twice — session records first (to
//! learn which user belongs to which user type), then op records — and
//! folds both passes into a [`FitObservation`]: per-user-type op-mix
//! counts, bounded reservoir samples of every usage measure the paper's
//! workload model parameterizes (access size, op interarrival, think time,
//! session length, inter-session gap), per-category usage aggregates and
//! the distinct-file geometry of the capture. Both passes reuse the
//! [`scan`](crate::scan) machinery: with a frame index and a window they
//! seek straight to the overlapping frames; without one they stream the
//! whole file through the same record-level window filter.
//!
//! This module only *collects*; it never fits. `uswg-core` runs the
//! `uswg-distr` fitters over the reservoirs and emits the runnable
//! `WorkloadSpec`, so `uswg-analyze` stays independent of the distribution
//! engine.

use crate::scan::{visit_indexed, ScanOptions};
use crate::StreamingSummary;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;
use uswg_fsc::FileCategory;
use uswg_netfs::OpKind;
use uswg_usim::{FrameIndex, OpRecord, SessionRecord, SpillReader, SpillRecord};

/// Default bound on every reservoir the collector keeps: large enough that
/// KS distances against it resolve to ~0.5%, small enough that a fit pass
/// over a billion-op capture stays in tens of megabytes.
pub const DEFAULT_RESERVOIR_CAP: usize = 65_536;

/// A bounded uniform sample of a value stream (Vitter's algorithm R),
/// driven by a fixed-seed xorshift64* generator so the same capture always
/// collects the same sample — and therefore always fits to the same spec.
#[derive(Debug, Clone)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    state: u64,
    samples: Vec<f64>,
}

impl Reservoir {
    /// An empty reservoir holding at most `cap` samples.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "reservoir capacity must be positive");
        Self {
            cap,
            seen: 0,
            state: 0x9E37_79B9_7F4A_7C15,
            samples: Vec::new(),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Offers one value: kept outright while below capacity, then replaces
    /// a random held sample with probability `cap / seen`.
    pub fn push(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(value);
        } else {
            let j = self.next_u64() % self.seen;
            if (j as usize) < self.cap {
                self.samples[j as usize] = value;
            }
        }
    }

    /// The held samples (at most the capacity), in no particular order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Values offered so far, held or not.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no value has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl Default for Reservoir {
    fn default() -> Self {
        Self::new(DEFAULT_RESERVOIR_CAP)
    }
}

/// Per-category usage aggregate of one user type: the observed counterpart
/// of a Table 5.2 `CategoryUsage` row.
#[derive(Debug, Clone)]
pub struct CategoryAggregate {
    /// The file category.
    pub category: FileCategory,
    /// Sessions of the type that touched the category at all.
    pub sessions: u64,
    /// File references summed over those sessions.
    pub files: u64,
    /// Referenced-file bytes summed over those sessions (largest size seen
    /// per file wins, since created files grow while written).
    pub file_bytes: u64,
    /// Bytes moved by reads and writes against the category.
    pub data_bytes: u64,
    /// Files referenced per touching session.
    pub files_per_session: Reservoir,
    /// Sizes of the referenced files, bytes.
    pub file_sizes: Reservoir,
}

impl CategoryAggregate {
    /// Mean bytes accessed per byte of file referenced (Figure 5.3's
    /// metric), 0 while nothing was referenced.
    pub fn access_per_byte(&self) -> f64 {
        if self.file_bytes == 0 {
            0.0
        } else {
            self.data_bytes as f64 / self.file_bytes as f64
        }
    }
}

/// Everything the fit pass measured about one user type.
#[derive(Debug, Clone)]
pub struct TypeObservation {
    /// The population's type index (from the session records).
    pub type_index: usize,
    /// Distinct users of this type seen in the window.
    pub users: usize,
    /// Sessions completed.
    pub sessions: u64,
    /// Ops classified to this type.
    pub ops: u64,
    /// Op counts indexed by position in [`OpKind::ALL`].
    pub op_mix: [u64; OpKind::ALL.len()],
    /// Transfer sizes of data ops, bytes.
    pub access_size: Reservoir,
    /// Issue-to-issue gaps between consecutive ops of a session, µs.
    pub interarrival: Reservoir,
    /// Completion-to-issue gaps between consecutive ops of a session
    /// (interarrival minus the previous op's response, floored at 0), µs —
    /// the paper's think time.
    pub think_time: Reservoir,
    /// Session lengths (`end − start`), µs.
    pub session_length: Reservoir,
    /// Per-user gaps between one session's end and the next one's start, µs.
    pub inter_session: Reservoir,
    /// Sessions per user of this type.
    pub sessions_per_user: StreamingSummary,
    /// Per-category aggregates, in category order.
    pub categories: Vec<CategoryAggregate>,
}

/// Distinct-file footprint of one category across the whole capture.
#[derive(Debug, Clone)]
pub struct CategoryFiles {
    /// The file category.
    pub category: FileCategory,
    /// Distinct files (inodes) observed.
    pub files: u64,
    /// Their sizes summed, bytes.
    pub bytes: u64,
    /// Their individual sizes, bytes.
    pub sizes: Reservoir,
}

/// The capture's file-system geometry: every distinct inode any op
/// touched, grouped per category — what `uswg-core` sizes the synthesized
/// file-system characterization and VFS limits from.
#[derive(Debug, Clone, Default)]
pub struct FileGeometry {
    /// Per-category footprints, in category order.
    pub categories: Vec<CategoryFiles>,
    /// Largest inode number observed.
    pub max_ino: u64,
    /// Largest single file size observed, bytes.
    pub max_file_size: u64,
    /// Distinct files observed.
    pub total_files: u64,
    /// Their sizes summed, bytes.
    pub total_bytes: u64,
}

/// The finished output of a fit collection pass.
#[derive(Debug, Clone)]
pub struct FitObservation {
    /// Per-user-type observations, ascending by type index.
    pub types: Vec<TypeObservation>,
    /// Distinct users seen in session records.
    pub users: usize,
    /// Session records folded.
    pub sessions: u64,
    /// Op records classified to a type.
    pub ops: u64,
    /// Op records whose user completed no session in the window — counted,
    /// never silently dropped.
    pub ops_unclassified: u64,
    /// The capture's distinct-file geometry.
    pub geometry: FileGeometry,
}

impl FitObservation {
    /// Whether the pass saw nothing at all (an empty window).
    pub fn is_empty(&self) -> bool {
        self.sessions == 0 && self.ops == 0 && self.ops_unclassified == 0
    }
}

/// Per-type accumulation state.
#[derive(Debug)]
struct TypeState {
    cap: usize,
    users: BTreeSet<usize>,
    sessions: u64,
    ops: u64,
    op_mix: [u64; OpKind::ALL.len()],
    access_size: Reservoir,
    interarrival: Reservoir,
    think_time: Reservoir,
    session_length: Reservoir,
    inter_session: Reservoir,
    categories: BTreeMap<FileCategory, CatState>,
}

impl TypeState {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            users: BTreeSet::new(),
            sessions: 0,
            ops: 0,
            op_mix: [0; OpKind::ALL.len()],
            access_size: Reservoir::new(cap),
            interarrival: Reservoir::new(cap),
            think_time: Reservoir::new(cap),
            session_length: Reservoir::new(cap),
            inter_session: Reservoir::new(cap),
            categories: BTreeMap::new(),
        }
    }
}

#[derive(Debug)]
struct CatState {
    sessions: u64,
    files: u64,
    file_bytes: u64,
    data_bytes: u64,
    files_per_session: Reservoir,
    file_sizes: Reservoir,
}

impl CatState {
    fn new(cap: usize) -> Self {
        Self {
            sessions: 0,
            files: 0,
            file_bytes: 0,
            data_bytes: 0,
            files_per_session: Reservoir::new(cap),
            file_sizes: Reservoir::new(cap),
        }
    }
}

/// One user's in-flight session during the op pass.
#[derive(Debug)]
struct SessionScratch {
    session: u32,
    /// `(at, response)` of the previous op in this session.
    last: Option<(u64, u64)>,
    per_cat: BTreeMap<FileCategory, CatScratch>,
}

impl SessionScratch {
    fn new(session: u32) -> Self {
        Self {
            session,
            last: None,
            per_cat: BTreeMap::new(),
        }
    }
}

#[derive(Debug, Default)]
struct CatScratch {
    /// Referenced inode → largest size seen.
    sizes: BTreeMap<u64, u64>,
    data_bytes: u64,
}

/// The two-pass streaming accumulator: feed every session record (pass 1),
/// then every op record (pass 2), then [`finish`](Self::finish). Sessions
/// must come first — they carry the user → user-type mapping that
/// classifies the ops. Memory stays bounded by the reservoir capacity, the
/// user count and the distinct-file count, never by the op count.
#[derive(Debug)]
pub struct FitCollector {
    cap: usize,
    user_type: BTreeMap<usize, usize>,
    types: BTreeMap<usize, TypeState>,
    sessions: u64,
    ops_unclassified: u64,
    /// Distinct inode → (largest size seen, last category seen).
    files: BTreeMap<u64, (u64, FileCategory)>,
    /// Per-user in-flight session state (op pass).
    scratch: BTreeMap<usize, SessionScratch>,
    /// Per-user previous session end (session pass).
    last_end: BTreeMap<usize, u64>,
    per_user_sessions: BTreeMap<usize, u64>,
}

impl Default for FitCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl FitCollector {
    /// A collector with the default reservoir capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RESERVOIR_CAP)
    }

    /// A collector whose reservoirs hold at most `cap` samples each.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "reservoir capacity must be positive");
        Self {
            cap,
            user_type: BTreeMap::new(),
            types: BTreeMap::new(),
            sessions: 0,
            ops_unclassified: 0,
            files: BTreeMap::new(),
            scratch: BTreeMap::new(),
            last_end: BTreeMap::new(),
            per_user_sessions: BTreeMap::new(),
        }
    }

    /// Folds one session record (pass 1).
    pub fn record_session(&mut self, s: &SessionRecord) {
        self.sessions += 1;
        self.user_type.insert(s.user, s.user_type);
        *self.per_user_sessions.entry(s.user).or_insert(0) += 1;
        let t = self
            .types
            .entry(s.user_type)
            .or_insert_with(|| TypeState::new(self.cap));
        t.users.insert(s.user);
        t.sessions += 1;
        t.session_length.push(s.end.saturating_sub(s.start) as f64);
        if let Some(&prev_end) = self.last_end.get(&s.user) {
            // Sessions of one user are sequential; a start before the
            // previous end would be a malformed log, skipped rather than
            // recorded as a negative gap.
            if s.start >= prev_end {
                t.inter_session.push((s.start - prev_end) as f64);
            }
        }
        self.last_end.insert(s.user, s.end);
    }

    /// Folds one op record (pass 2). Ops of users with no in-window
    /// session have no type to charge; they count as unclassified.
    pub fn record_op(&mut self, op: &OpRecord) {
        let entry = self.files.entry(op.ino).or_insert((0, op.category));
        entry.0 = entry.0.max(op.file_size);
        entry.1 = op.category;
        let Some(&ty) = self.user_type.get(&op.user) else {
            self.ops_unclassified += 1;
            return;
        };
        let t = self.types.get_mut(&ty).expect("type created in pass 1");
        t.ops += 1;
        let pos = OpKind::ALL
            .iter()
            .position(|&k| k == op.op)
            .expect("every OpKind is in ALL");
        t.op_mix[pos] += 1;
        if op.op.is_data() && op.bytes > 0 {
            t.access_size.push(op.bytes as f64);
        }
        let scratch = self
            .scratch
            .entry(op.user)
            .or_insert_with(|| SessionScratch::new(op.session));
        if scratch.session != op.session {
            let done = std::mem::replace(scratch, SessionScratch::new(op.session));
            Self::flush_scratch(t, done);
        }
        if let Some((last_at, last_resp)) = scratch.last {
            if op.at >= last_at {
                t.interarrival.push((op.at - last_at) as f64);
                t.think_time
                    .push(op.at.saturating_sub(last_at.saturating_add(last_resp)) as f64);
            }
        }
        scratch.last = Some((op.at, op.response));
        let c = scratch.per_cat.entry(op.category).or_default();
        let size = c.sizes.entry(op.ino).or_insert(0);
        *size = (*size).max(op.file_size);
        if op.op.is_data() {
            c.data_bytes += op.bytes;
        }
    }

    fn flush_scratch(t: &mut TypeState, done: SessionScratch) {
        let cap = t.cap;
        for (category, c) in done.per_cat {
            let cs = t
                .categories
                .entry(category)
                .or_insert_with(|| CatState::new(cap));
            cs.sessions += 1;
            cs.files += c.sizes.len() as u64;
            cs.file_bytes += c.sizes.values().sum::<u64>();
            cs.data_bytes += c.data_bytes;
            cs.files_per_session.push(c.sizes.len() as f64);
            for &size in c.sizes.values() {
                cs.file_sizes.push(size as f64);
            }
        }
    }

    /// Flushes the in-flight sessions and returns the observation.
    pub fn finish(mut self) -> FitObservation {
        let scratches = std::mem::take(&mut self.scratch);
        for (user, scratch) in scratches {
            if let Some(ty) = self.user_type.get(&user) {
                let t = self.types.get_mut(ty).expect("type created in pass 1");
                Self::flush_scratch(t, scratch);
            }
        }
        let mut spu: BTreeMap<usize, StreamingSummary> = BTreeMap::new();
        for (user, &count) in &self.per_user_sessions {
            let ty = self.user_type[user];
            spu.entry(ty).or_default().push(count as f64);
        }
        let mut ops = 0;
        let types: Vec<TypeObservation> = self
            .types
            .into_iter()
            .map(|(type_index, t)| {
                ops += t.ops;
                TypeObservation {
                    type_index,
                    users: t.users.len(),
                    sessions: t.sessions,
                    ops: t.ops,
                    op_mix: t.op_mix,
                    access_size: t.access_size,
                    interarrival: t.interarrival,
                    think_time: t.think_time,
                    session_length: t.session_length,
                    inter_session: t.inter_session,
                    sessions_per_user: spu.remove(&type_index).unwrap_or_default(),
                    categories: t
                        .categories
                        .into_iter()
                        .map(|(category, c)| CategoryAggregate {
                            category,
                            sessions: c.sessions,
                            files: c.files,
                            file_bytes: c.file_bytes,
                            data_bytes: c.data_bytes,
                            files_per_session: c.files_per_session,
                            file_sizes: c.file_sizes,
                        })
                        .collect(),
                }
            })
            .collect();
        let mut geom: BTreeMap<FileCategory, CategoryFiles> = BTreeMap::new();
        let mut geometry = FileGeometry::default();
        for (&ino, &(size, category)) in &self.files {
            geometry.max_ino = geometry.max_ino.max(ino);
            geometry.max_file_size = geometry.max_file_size.max(size);
            geometry.total_files += 1;
            geometry.total_bytes += size;
            let cf = geom.entry(category).or_insert_with(|| CategoryFiles {
                category,
                files: 0,
                bytes: 0,
                sizes: Reservoir::new(self.cap),
            });
            cf.files += 1;
            cf.bytes += size;
            cf.sizes.push(size as f64);
        }
        geometry.categories = geom.into_values().collect();
        FitObservation {
            types,
            users: self.user_type.len(),
            sessions: self.sessions,
            ops,
            ops_unclassified: self.ops_unclassified,
            geometry,
        }
    }
}

/// The result of [`collect_fit`], with the frame accounting of the indexed
/// path (absent when the file was streamed without an index).
#[derive(Debug)]
pub struct FitOutcome {
    /// What the pass measured.
    pub observation: FitObservation,
    /// Frames in the file, per the index.
    pub frames_total: Option<usize>,
    /// Frames decoded per pass (selected by window, thinned by sampling).
    pub frames_decoded: Option<usize>,
}

/// Runs the two fit passes over the spill capture at `path` — either
/// codec. With a window or sampling requested *and* an index footer
/// present, each pass seeks straight to the overlapping frames (the
/// [`visit_indexed`] path); otherwise both passes stream the whole file
/// through the record-level window filter, which also covers footer-less
/// pre-index captures. Each pass skips the other record kind structurally,
/// so a pass never decodes the frames it doesn't need.
///
/// # Errors
///
/// Propagates open and decode errors. A truncated or corrupt capture
/// errors mid-pass; fitting never salvages, since a spec synthesized from
/// a partial read would silently misrepresent the workload.
pub fn collect_fit<P: AsRef<Path>>(path: P, opts: &ScanOptions) -> io::Result<FitOutcome> {
    let path = path.as_ref();
    let windowed =
        opts.since.is_some() || opts.until.is_some() || opts.sample.is_some_and(|k| k > 1);
    let index = if windowed {
        FrameIndex::load_path(path)?
    } else {
        None
    };
    let mut collector = FitCollector::new();
    let counts = match &index {
        Some(index) => {
            visit_indexed(
                index,
                opts,
                || Ok(SpillReader::open(path)?.sessions_only()),
                |record| {
                    if let SpillRecord::Session(s) = record {
                        collector.record_session(s);
                    }
                },
            )?;
            let (frames_total, frames_decoded) = visit_indexed(
                index,
                opts,
                || Ok(SpillReader::open(path)?.ops_only()),
                |record| {
                    if let SpillRecord::Op(op) = record {
                        collector.record_op(op);
                    }
                },
            )?;
            Some((frames_total, frames_decoded))
        }
        None => {
            stream_pass(path, opts, &mut |record| {
                if let SpillRecord::Session(s) = record {
                    collector.record_session(s);
                }
            })?;
            stream_pass(path, opts, &mut |record| {
                if let SpillRecord::Op(op) = record {
                    collector.record_op(op);
                }
            })?;
            None
        }
    };
    Ok(FitOutcome {
        observation: collector.finish(),
        frames_total: counts.map(|c| c.0),
        frames_decoded: counts.map(|c| c.1),
    })
}

/// One sequential streaming pass over the whole file.
fn stream_pass(
    path: &Path,
    opts: &ScanOptions,
    visit: &mut dyn FnMut(&SpillRecord),
) -> io::Result<()> {
    let mut reader = SpillReader::open(path)?;
    for record in &mut reader {
        let record = record?;
        if opts.record_in_window(&record) {
            visit(&record);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(user: usize, session: u32, at: u64, kind: OpKind, bytes: u64) -> OpRecord {
        OpRecord {
            at,
            user,
            session,
            op: kind,
            ino: 1,
            bytes,
            file_size: 4096,
            response: 100,
            category: FileCategory::REG_USER_RDONLY,
            retries: 0,
            aborted: false,
        }
    }

    fn session(user: usize, user_type: usize, session: u32, start: u64, end: u64) -> SessionRecord {
        SessionRecord {
            user,
            user_type,
            session,
            start,
            end,
            ops: 1,
            files_referenced: 1,
            file_bytes_referenced: 4096,
            bytes_accessed: 100,
            bytes_read: 100,
            bytes_written: 0,
            total_response: 100,
        }
    }

    #[test]
    fn reservoir_below_capacity_keeps_everything() {
        let mut r = Reservoir::new(16);
        for i in 0..10 {
            r.push(i as f64);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 10);
        assert_eq!(r.samples(), (0..10).map(f64::from).collect::<Vec<_>>());
    }

    #[test]
    fn reservoir_bounds_memory_and_stays_deterministic() {
        let fill = |n: u64| {
            let mut r = Reservoir::new(64);
            for i in 0..n {
                r.push(i as f64);
            }
            r
        };
        let a = fill(100_000);
        assert_eq!(a.len(), 64);
        assert_eq!(a.seen(), 100_000);
        // Same stream → identical sample (no ambient randomness).
        let b = fill(100_000);
        assert_eq!(a.samples(), b.samples());
        // The sample is roughly uniform over the stream: its mean is near
        // the stream mean, not stuck at either end.
        let mean = a.samples().iter().sum::<f64>() / a.len() as f64;
        assert!((20_000.0..80_000.0).contains(&mean), "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn reservoir_rejects_zero_capacity() {
        let _ = Reservoir::new(0);
    }

    #[test]
    fn collector_classifies_ops_by_type_and_derives_gaps() {
        let mut c = FitCollector::new();
        // Two users of different types; user 9 has no session record.
        c.record_session(&session(0, 0, 0, 0, 10_000));
        c.record_session(&session(0, 0, 1, 15_000, 30_000));
        c.record_session(&session(1, 1, 0, 0, 20_000));
        // User 0, session 0: ops at 1000 and 1600 (response 100), so one
        // interarrival gap of 600 and one think gap of 500.
        c.record_op(&op(0, 0, 1_000, OpKind::Open, 0));
        c.record_op(&op(0, 0, 1_600, OpKind::Read, 256));
        // Session change resets the gap chain: no gap across sessions.
        c.record_op(&op(0, 1, 16_000, OpKind::Write, 512));
        c.record_op(&op(1, 0, 2_000, OpKind::Read, 128));
        c.record_op(&op(9, 0, 3_000, OpKind::Read, 64));

        let obs = c.finish();
        assert_eq!(obs.users, 2);
        assert_eq!(obs.sessions, 3);
        assert_eq!(obs.ops, 4);
        assert_eq!(obs.ops_unclassified, 1);
        assert_eq!(obs.types.len(), 2);

        let t0 = &obs.types[0];
        assert_eq!(t0.type_index, 0);
        assert_eq!(t0.users, 1);
        assert_eq!(t0.sessions, 2);
        assert_eq!(t0.ops, 3);
        let open_pos = OpKind::ALL.iter().position(|&k| k == OpKind::Open).unwrap();
        let read_pos = OpKind::ALL.iter().position(|&k| k == OpKind::Read).unwrap();
        let write_pos = OpKind::ALL
            .iter()
            .position(|&k| k == OpKind::Write)
            .unwrap();
        assert_eq!(t0.op_mix[open_pos], 1);
        assert_eq!(t0.op_mix[read_pos], 1);
        assert_eq!(t0.op_mix[write_pos], 1);
        assert_eq!(t0.access_size.samples(), &[256.0, 512.0]);
        assert_eq!(t0.interarrival.samples(), &[600.0]);
        assert_eq!(t0.think_time.samples(), &[500.0]);
        assert_eq!(t0.session_length.samples(), &[10_000.0, 15_000.0]);
        // Session 0 ends at 10_000, session 1 starts at 15_000.
        assert_eq!(t0.inter_session.samples(), &[5_000.0]);
        assert!((t0.sessions_per_user.summary().mean - 2.0).abs() < 1e-12);

        let t1 = &obs.types[1];
        assert_eq!(t1.type_index, 1);
        assert_eq!(t1.ops, 1);
        assert!(t1.interarrival.is_empty());
    }

    #[test]
    fn collector_aggregates_categories_and_geometry() {
        let mut c = FitCollector::new();
        c.record_session(&session(0, 0, 0, 0, 10_000));
        let mut o1 = op(0, 0, 100, OpKind::Read, 1_000);
        o1.ino = 10;
        o1.file_size = 8_192;
        let mut o2 = op(0, 0, 200, OpKind::Write, 500);
        o2.ino = 11;
        o2.file_size = 2_048;
        o2.category = FileCategory::REG_USER_RDWRT;
        // The same file again, grown: largest size wins, not double-counted.
        let mut o3 = op(0, 0, 300, OpKind::Write, 500);
        o3.ino = 11;
        o3.file_size = 4_096;
        o3.category = FileCategory::REG_USER_RDWRT;
        c.record_op(&o1);
        c.record_op(&o2);
        c.record_op(&o3);

        let obs = c.finish();
        let cats = &obs.types[0].categories;
        assert_eq!(cats.len(), 2);
        let rdonly = cats
            .iter()
            .find(|c| c.category == FileCategory::REG_USER_RDONLY)
            .unwrap();
        assert_eq!(rdonly.files, 1);
        assert_eq!(rdonly.file_bytes, 8_192);
        assert_eq!(rdonly.data_bytes, 1_000);
        assert_eq!(rdonly.sessions, 1);
        assert!((rdonly.access_per_byte() - 1_000.0 / 8_192.0).abs() < 1e-12);
        let rdwr = cats
            .iter()
            .find(|c| c.category == FileCategory::REG_USER_RDWRT)
            .unwrap();
        assert_eq!(rdwr.files, 1);
        assert_eq!(rdwr.file_bytes, 4_096);
        assert_eq!(rdwr.data_bytes, 1_000);

        assert_eq!(obs.geometry.total_files, 2);
        assert_eq!(obs.geometry.total_bytes, 8_192 + 4_096);
        assert_eq!(obs.geometry.max_ino, 11);
        assert_eq!(obs.geometry.max_file_size, 8_192);
        assert_eq!(obs.geometry.categories.len(), 2);
    }

    #[test]
    fn empty_observation_is_detected() {
        let obs = FitCollector::new().finish();
        assert!(obs.is_empty());
        assert!(obs.types.is_empty());
        let mut c = FitCollector::new();
        c.record_op(&op(5, 0, 0, OpKind::Read, 1));
        assert!(!c.finish().is_empty());
    }
}
