//! Metrics extracted from usage logs: the data behind Tables 5.2–5.3 and
//! Figures 5.3–5.12.

use crate::Summary;
use std::collections::BTreeMap;
use uswg_fsc::FileCategory;
use uswg_netfs::OpKind;
use uswg_usim::{SessionRecord, UsageLog};

/// Which per-session usage measure to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMetric {
    /// Bytes moved per byte of file referenced (Figure 5.3).
    AccessPerByte,
    /// Mean size of the files referenced (Figure 5.4).
    MeanFileSize,
    /// Number of files referenced (Figure 5.5).
    FilesReferenced,
    /// Mean response time per accessed byte (Figures 5.6–5.11).
    ResponsePerByte,
}

/// Per-session values of a usage measure, in session order.
pub fn session_series(log: &UsageLog, metric: SessionMetric) -> Vec<f64> {
    log.sessions()
        .iter()
        .map(|s| session_metric(s, metric))
        .collect()
}

fn session_metric(s: &SessionRecord, metric: SessionMetric) -> f64 {
    match metric {
        SessionMetric::AccessPerByte => s.access_per_byte(),
        SessionMetric::MeanFileSize => s.mean_file_size(),
        SessionMetric::FilesReferenced => s.files_referenced as f64,
        SessionMetric::ResponsePerByte => s.response_per_byte(),
    }
}

/// One row of the per-system-call summary (Table 5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct OpKindSummary {
    /// The system call.
    pub kind: OpKind,
    /// Number of calls observed.
    pub count: usize,
    /// Access-size statistics over the calls (bytes).
    pub access_size: Summary,
    /// Response-time statistics over the calls (µs).
    pub response: Summary,
}

/// Summarizes access size and response time per system call kind, in
/// [`OpKind::ALL`] order, skipping kinds that never occurred.
pub fn op_kind_summaries(log: &UsageLog) -> Vec<OpKindSummary> {
    OpKind::ALL
        .iter()
        .filter_map(|&kind| {
            let sizes: Vec<f64> = log
                .ops()
                .iter()
                .filter(|o| o.op == kind)
                .map(|o| o.bytes as f64)
                .collect();
            if sizes.is_empty() {
                return None;
            }
            let responses: Vec<f64> = log
                .ops()
                .iter()
                .filter(|o| o.op == kind)
                .map(|o| o.response as f64)
                .collect();
            Some(OpKindSummary {
                kind,
                count: sizes.len(),
                access_size: Summary::of(&sizes),
                response: Summary::of(&responses),
            })
        })
        .collect()
}

/// Access-size and response-time summary over *data* calls only (read/
/// write), the aggregate Table 5.3 reports per user count.
pub fn data_op_summary(log: &UsageLog) -> (Summary, Summary) {
    let data: Vec<&uswg_usim::OpRecord> = log
        .ops()
        .iter()
        .filter(|o| o.op.is_data() && o.bytes > 0)
        .collect();
    let sizes: Vec<f64> = data.iter().map(|o| o.bytes as f64).collect();
    let responses: Vec<f64> = data.iter().map(|o| o.response as f64).collect();
    (Summary::of(&sizes), Summary::of(&responses))
}

/// Mean response time per byte: the total response time of **all** file
/// I/O system calls divided by the data bytes moved (the y-axis of Figures
/// 5.6–5.12, matching [`SessionRecord::response_per_byte`]).
///
/// Charging metadata calls to the transferred bytes matters when comparing
/// file systems: a whole-file-caching design does its expensive work at
/// `open` time, and a per-byte metric that ignored opens would make it look
/// free (Section 5.3's comparison would be meaningless).
pub fn response_time_per_byte(log: &UsageLog) -> f64 {
    let mut micros = 0u64;
    let mut bytes = 0u64;
    for op in log.ops() {
        micros += op.response;
        if op.op.is_data() {
            bytes += op.bytes;
        }
    }
    if bytes == 0 {
        0.0
    } else {
        micros as f64 / bytes as f64
    }
}

/// Per-category usage characterization measured from a log: the *observed*
/// counterpart of Table 5.2's specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryObservation {
    /// The file category.
    pub category: FileCategory,
    /// Mean bytes accessed per byte of file referenced.
    pub access_per_byte: f64,
    /// Mean size of the files referenced, bytes.
    pub mean_file_size: f64,
    /// Mean files of this category referenced per session *that accessed
    /// the category*.
    pub mean_files: f64,
    /// Fraction of sessions that accessed the category at all.
    pub pct_sessions: f64,
}

/// Measures per-category usage from the op stream (requires `record_ops`).
pub fn category_observations(log: &UsageLog) -> Vec<CategoryObservation> {
    /// Per (session, category) accumulator.
    #[derive(Default)]
    struct Acc {
        /// Referenced files and their sizes (largest size seen wins, since
        /// created files grow while being written).
        file_sizes: BTreeMap<u64, u64>,
        data_bytes: u64,
    }
    let mut sessions_seen = std::collections::BTreeSet::new();
    let mut acc: BTreeMap<(usize, u32, FileCategory), Acc> = BTreeMap::new();
    for op in log.ops() {
        sessions_seen.insert((op.user, op.session));
        let a = acc.entry((op.user, op.session, op.category)).or_default();
        let size = a.file_sizes.entry(op.ino).or_insert(0);
        *size = (*size).max(op.file_size);
        if op.op.is_data() {
            a.data_bytes += op.bytes;
        }
    }
    let total_sessions = sessions_seen.len().max(1);
    /// Per-category rollup: sessions, files, file bytes, data bytes.
    #[derive(Default)]
    struct Rollup {
        sessions: usize,
        files: u64,
        file_bytes: u64,
        data_bytes: u64,
    }
    let mut by_category: BTreeMap<FileCategory, Rollup> = BTreeMap::new();
    for ((_, _, category), a) in &acc {
        let entry = by_category.entry(*category).or_default();
        entry.sessions += 1;
        entry.files += a.file_sizes.len() as u64;
        entry.file_bytes += a.file_sizes.values().sum::<u64>();
        entry.data_bytes += a.data_bytes;
    }
    by_category
        .into_iter()
        .map(|(category, r)| CategoryObservation {
            category,
            access_per_byte: if r.file_bytes == 0 {
                0.0
            } else {
                r.data_bytes as f64 / r.file_bytes as f64
            },
            mean_file_size: if r.files == 0 {
                0.0
            } else {
                r.file_bytes as f64 / r.files as f64
            },
            mean_files: r.files as f64 / r.sessions.max(1) as f64,
            pct_sessions: r.sessions as f64 / total_sessions as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uswg_fsc::FileCategory;
    use uswg_usim::{OpRecord, SessionRecord};

    fn log_with(ops: Vec<OpRecord>, sessions: Vec<SessionRecord>) -> UsageLog {
        let mut log = UsageLog::new();
        for o in ops {
            log.push_op(o);
        }
        for s in sessions {
            log.push_session(s);
        }
        log
    }

    fn op(kind: OpKind, bytes: u64, response: u64) -> OpRecord {
        OpRecord {
            at: 0,
            user: 0,
            session: 0,
            op: kind,
            ino: 1,
            bytes,
            file_size: 1000,
            response,
            category: FileCategory::REG_USER_RDONLY,
        }
    }

    fn session(bytes_accessed: u64, file_bytes: u64, files: u64, response: u64) -> SessionRecord {
        SessionRecord {
            user: 0,
            user_type: 0,
            session: 0,
            start: 0,
            end: 1,
            ops: 1,
            files_referenced: files,
            file_bytes_referenced: file_bytes,
            bytes_accessed,
            bytes_read: bytes_accessed,
            bytes_written: 0,
            total_response: response,
        }
    }

    #[test]
    fn series_extraction() {
        let log = log_with(vec![], vec![session(200, 100, 4, 50)]);
        assert_eq!(
            session_series(&log, SessionMetric::AccessPerByte),
            vec![2.0]
        );
        assert_eq!(
            session_series(&log, SessionMetric::MeanFileSize),
            vec![25.0]
        );
        assert_eq!(
            session_series(&log, SessionMetric::FilesReferenced),
            vec![4.0]
        );
        assert_eq!(
            session_series(&log, SessionMetric::ResponsePerByte),
            vec![0.25]
        );
    }

    #[test]
    fn op_kind_summary_skips_absent_kinds() {
        let log = log_with(
            vec![op(OpKind::Read, 100, 10), op(OpKind::Read, 300, 20)],
            vec![],
        );
        let summaries = op_kind_summaries(&log);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].kind, OpKind::Read);
        assert_eq!(summaries[0].count, 2);
        assert!((summaries[0].access_size.mean - 200.0).abs() < 1e-12);
        assert!((summaries[0].response.mean - 15.0).abs() < 1e-12);
    }

    #[test]
    fn data_summary_ignores_metadata() {
        let log = log_with(
            vec![
                op(OpKind::Read, 100, 10),
                op(OpKind::Open, 0, 99),
                op(OpKind::Write, 300, 30),
            ],
            vec![],
        );
        let (sizes, responses) = data_op_summary(&log);
        assert_eq!(sizes.n, 2);
        assert!((sizes.mean - 200.0).abs() < 1e-12);
        assert!((responses.mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn response_per_byte_weights_by_bytes() {
        let log = log_with(
            vec![op(OpKind::Read, 100, 100), op(OpKind::Read, 300, 100)],
            vec![],
        );
        // 200 µs over 400 bytes.
        assert!((response_time_per_byte(&log) - 0.5).abs() < 1e-12);
        assert_eq!(response_time_per_byte(&UsageLog::new()), 0.0);
    }

    #[test]
    fn response_per_byte_charges_metadata_calls() {
        // An expensive open is not free, even though it moves no bytes.
        let log = log_with(
            vec![op(OpKind::Open, 0, 400), op(OpKind::Read, 400, 100)],
            vec![],
        );
        // (400 + 100) µs over 400 data bytes.
        assert!((response_time_per_byte(&log) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn category_observation_counts() {
        let mut ops = vec![op(OpKind::Open, 0, 1), op(OpKind::Read, 500, 1)];
        ops.push(OpRecord {
            ino: 2,
            ..op(OpKind::Read, 250, 1)
        });
        let log = log_with(ops, vec![]);
        let obs = category_observations(&log);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].category, FileCategory::REG_USER_RDONLY);
        assert_eq!(obs[0].mean_files, 2.0);
        assert_eq!(obs[0].pct_sessions, 1.0);
        // Two files of size 1000 each; 750 data bytes over 2000 file bytes.
        assert!((obs[0].mean_file_size - 1000.0).abs() < 1e-12);
        assert!((obs[0].access_per_byte - 0.375).abs() < 1e-12);
    }
}
