//! Metrics extracted from usage logs: the data behind Tables 5.2–5.3 and
//! Figures 5.3–5.12.
//!
//! Two shapes of input: the batch functions take a materialized
//! [`UsageLog`]; [`StreamLogStats`] is a [`LogSink`] that folds the same
//! statistics out of a record *stream* (a live run, or a spill file read
//! through `SpillReader`) in O(1) memory — the engine behind
//! `uswg analyze`.

use crate::{StreamingSummary, Summary};
use std::collections::BTreeMap;
use uswg_fsc::FileCategory;
use uswg_netfs::OpKind;
use uswg_usim::{LogSink, OpRecord, SessionRecord, UsageLog};

/// Which per-session usage measure to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMetric {
    /// Bytes moved per byte of file referenced (Figure 5.3).
    AccessPerByte,
    /// Mean size of the files referenced (Figure 5.4).
    MeanFileSize,
    /// Number of files referenced (Figure 5.5).
    FilesReferenced,
    /// Mean response time per accessed byte (Figures 5.6–5.11).
    ResponsePerByte,
}

/// Per-session values of a usage measure, in session order.
pub fn session_series(log: &UsageLog, metric: SessionMetric) -> Vec<f64> {
    log.sessions()
        .iter()
        .map(|s| session_metric(s, metric))
        .collect()
}

fn session_metric(s: &SessionRecord, metric: SessionMetric) -> f64 {
    match metric {
        SessionMetric::AccessPerByte => s.access_per_byte(),
        SessionMetric::MeanFileSize => s.mean_file_size(),
        SessionMetric::FilesReferenced => s.files_referenced as f64,
        SessionMetric::ResponsePerByte => s.response_per_byte(),
    }
}

/// One row of the per-system-call summary (Table 5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct OpKindSummary {
    /// The system call.
    pub kind: OpKind,
    /// Number of calls observed.
    pub count: usize,
    /// Access-size statistics over the calls (bytes).
    pub access_size: Summary,
    /// Response-time statistics over the calls (µs).
    pub response: Summary,
}

/// Summarizes access size and response time per system call kind, in
/// [`OpKind::ALL`] order, skipping kinds that never occurred.
pub fn op_kind_summaries(log: &UsageLog) -> Vec<OpKindSummary> {
    OpKind::ALL
        .iter()
        .filter_map(|&kind| {
            let sizes: Vec<f64> = log
                .ops()
                .iter()
                .filter(|o| o.op == kind)
                .map(|o| o.bytes as f64)
                .collect();
            if sizes.is_empty() {
                return None;
            }
            let responses: Vec<f64> = log
                .ops()
                .iter()
                .filter(|o| o.op == kind)
                .map(|o| o.response as f64)
                .collect();
            Some(OpKindSummary {
                kind,
                count: sizes.len(),
                access_size: Summary::of(&sizes),
                response: Summary::of(&responses),
            })
        })
        .collect()
}

/// Access-size and response-time summary over *data* calls only (read/
/// write), the aggregate Table 5.3 reports per user count.
pub fn data_op_summary(log: &UsageLog) -> (Summary, Summary) {
    let data: Vec<&uswg_usim::OpRecord> = log
        .ops()
        .iter()
        .filter(|o| o.op.is_data() && o.bytes > 0)
        .collect();
    let sizes: Vec<f64> = data.iter().map(|o| o.bytes as f64).collect();
    let responses: Vec<f64> = data.iter().map(|o| o.response as f64).collect();
    (Summary::of(&sizes), Summary::of(&responses))
}

/// Mean response time per byte: the total response time of **all** file
/// I/O system calls divided by the data bytes moved (the y-axis of Figures
/// 5.6–5.12, matching [`SessionRecord::response_per_byte`]).
///
/// Charging metadata calls to the transferred bytes matters when comparing
/// file systems: a whole-file-caching design does its expensive work at
/// `open` time, and a per-byte metric that ignored opens would make it look
/// free (Section 5.3's comparison would be meaningless).
pub fn response_time_per_byte(log: &UsageLog) -> f64 {
    let mut micros = 0u64;
    let mut bytes = 0u64;
    for op in log.ops() {
        micros += op.response;
        if op.op.is_data() {
            bytes += op.bytes;
        }
    }
    if bytes == 0 {
        0.0
    } else {
        micros as f64 / bytes as f64
    }
}

/// One per-op-kind accumulator of [`StreamLogStats`].
#[derive(Debug, Clone, Copy, Default)]
struct KindAcc {
    count: u64,
    access_size: StreamingSummary,
    response: StreamingSummary,
}

/// Per-user-type aggregates folded from the session records of a stream:
/// the breakdown `uswg analyze --by-type` reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UserTypeStream {
    /// Sessions completed by users of this type.
    pub sessions: u64,
    /// System calls those sessions issued.
    pub ops: u64,
    /// Bytes moved by those sessions' reads and writes.
    pub bytes_accessed: u64,
    /// Total response time of those sessions' calls, µs.
    pub total_response_us: u64,
}

impl UserTypeStream {
    /// Mean response time per accessed byte, µs (0 while no bytes moved).
    pub fn response_per_byte(&self) -> f64 {
        if self.bytes_accessed == 0 {
            0.0
        } else {
            self.total_response_us as f64 / self.bytes_accessed as f64
        }
    }
}

/// Streaming usage-log statistics: a [`LogSink`] that folds every record
/// into the aggregates the batch functions above compute from a
/// materialized log — per-kind counts and access-size/response summaries
/// ([`op_kind_summaries`]), the data-op aggregate ([`data_op_summary`]),
/// the response-per-byte metric ([`response_time_per_byte`]) and a
/// per-user-type session breakdown — in O(1) memory regardless of stream
/// length. Means and extrema match the batch path exactly; standard
/// deviations agree to floating-point accumulation order (≤ 1e-9
/// relative, test-pinned).
#[derive(Debug, Clone, Default)]
pub struct StreamLogStats {
    /// Operations observed.
    pub ops: u64,
    /// Sessions observed.
    pub sessions: u64,
    /// Total response time over all operations, µs.
    pub total_response_us: u64,
    /// Bytes moved by data operations.
    pub data_bytes: u64,
    /// Retried attempts summed over all operations (fault injection;
    /// 0 for fault-free logs, including every pre-fault spill file).
    pub retries: u64,
    /// Operations that exhausted their retry budget and were aborted.
    pub aborted_ops: u64,
    /// Bytes moved by aborted data operations.
    pub aborted_bytes: u64,
    /// Per-kind accumulators, indexed by position in [`OpKind::ALL`].
    per_kind: [KindAcc; OpKind::ALL.len()],
    data_access_size: StreamingSummary,
    data_response: StreamingSummary,
    by_user_type: BTreeMap<usize, UserTypeStream>,
}

impl StreamLogStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-system-call summaries in [`OpKind::ALL`] order, skipping kinds
    /// that never occurred — the streaming [`op_kind_summaries`].
    pub fn op_kind_summaries(&self) -> Vec<OpKindSummary> {
        OpKind::ALL
            .iter()
            .zip(&self.per_kind)
            .filter(|(_, acc)| acc.count > 0)
            .map(|(&kind, acc)| OpKindSummary {
                kind,
                count: acc.count as usize,
                access_size: acc.access_size.summary(),
                response: acc.response.summary(),
            })
            .collect()
    }

    /// Access-size and response-time summary over data calls only — the
    /// streaming [`data_op_summary`].
    pub fn data_op_summary(&self) -> (Summary, Summary) {
        (
            self.data_access_size.summary(),
            self.data_response.summary(),
        )
    }

    /// Mean response time of all calls per data byte moved — the streaming
    /// [`response_time_per_byte`].
    pub fn response_per_byte(&self) -> f64 {
        if self.data_bytes == 0 {
            0.0
        } else {
            self.total_response_us as f64 / self.data_bytes as f64
        }
    }

    /// Per-user-type session aggregates, keyed by the population's type
    /// index (ascending).
    pub fn user_types(&self) -> &BTreeMap<usize, UserTypeStream> {
        &self.by_user_type
    }

    /// Fraction of operations that aborted (0 for fault-free logs).
    pub fn abort_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.aborted_ops as f64 / self.ops as f64
        }
    }

    /// Bytes moved by data operations that completed without aborting:
    /// goodput, against `data_bytes` as offered load.
    pub fn goodput_bytes(&self) -> u64 {
        self.data_bytes - self.aborted_bytes
    }

    /// Folds another accumulator in, as if its records had been recorded
    /// here — the combining half of parallel analyze, mirroring
    /// `SummarySink::merge`: disjoint frame ranges accumulate
    /// independently, then merge in file order. Counters add; the
    /// streaming summaries combine via [`StreamingSummary::merge`], so the
    /// result matches a sequential pass over the same records to
    /// floating-point roundoff (≤ 1e-9, test-pinned).
    pub fn merge(&mut self, other: &Self) {
        self.ops += other.ops;
        self.sessions += other.sessions;
        self.total_response_us += other.total_response_us;
        self.data_bytes += other.data_bytes;
        self.retries += other.retries;
        self.aborted_ops += other.aborted_ops;
        self.aborted_bytes += other.aborted_bytes;
        for (mine, theirs) in self.per_kind.iter_mut().zip(&other.per_kind) {
            mine.count += theirs.count;
            mine.access_size.merge(&theirs.access_size);
            mine.response.merge(&theirs.response);
        }
        self.data_access_size.merge(&other.data_access_size);
        self.data_response.merge(&other.data_response);
        for (&user_type, theirs) in &other.by_user_type {
            let mine = self.by_user_type.entry(user_type).or_default();
            mine.sessions += theirs.sessions;
            mine.ops += theirs.ops;
            mine.bytes_accessed += theirs.bytes_accessed;
            mine.total_response_us += theirs.total_response_us;
        }
    }
}

impl LogSink for StreamLogStats {
    fn record_op(&mut self, op: &OpRecord) {
        self.ops += 1;
        self.total_response_us += op.response;
        self.retries += u64::from(op.retries);
        if op.aborted {
            self.aborted_ops += 1;
            if op.op.is_data() && op.bytes > 0 {
                self.aborted_bytes += op.bytes;
            }
        }
        let pos = OpKind::ALL
            .iter()
            .position(|&k| k == op.op)
            .expect("every OpKind is in ALL");
        let acc = &mut self.per_kind[pos];
        acc.count += 1;
        acc.access_size.push(op.bytes as f64);
        acc.response.push(op.response as f64);
        if op.op.is_data() && op.bytes > 0 {
            self.data_bytes += op.bytes;
            self.data_access_size.push(op.bytes as f64);
            self.data_response.push(op.response as f64);
        }
    }

    fn record_session(&mut self, session: &SessionRecord) {
        self.sessions += 1;
        let entry = self.by_user_type.entry(session.user_type).or_default();
        entry.sessions += 1;
        entry.ops += session.ops;
        entry.bytes_accessed += session.bytes_accessed;
        entry.total_response_us += session.total_response;
    }
}

/// Per-category usage characterization measured from a log: the *observed*
/// counterpart of Table 5.2's specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryObservation {
    /// The file category.
    pub category: FileCategory,
    /// Mean bytes accessed per byte of file referenced.
    pub access_per_byte: f64,
    /// Mean size of the files referenced, bytes.
    pub mean_file_size: f64,
    /// Mean files of this category referenced per session *that accessed
    /// the category*.
    pub mean_files: f64,
    /// Fraction of sessions that accessed the category at all.
    pub pct_sessions: f64,
}

/// Measures per-category usage from the op stream (requires `record_ops`).
pub fn category_observations(log: &UsageLog) -> Vec<CategoryObservation> {
    /// Per (session, category) accumulator.
    #[derive(Default)]
    struct Acc {
        /// Referenced files and their sizes (largest size seen wins, since
        /// created files grow while being written).
        file_sizes: BTreeMap<u64, u64>,
        data_bytes: u64,
    }
    let mut sessions_seen = std::collections::BTreeSet::new();
    let mut acc: BTreeMap<(usize, u32, FileCategory), Acc> = BTreeMap::new();
    for op in log.ops() {
        sessions_seen.insert((op.user, op.session));
        let a = acc.entry((op.user, op.session, op.category)).or_default();
        let size = a.file_sizes.entry(op.ino).or_insert(0);
        *size = (*size).max(op.file_size);
        if op.op.is_data() {
            a.data_bytes += op.bytes;
        }
    }
    let total_sessions = sessions_seen.len().max(1);
    /// Per-category rollup: sessions, files, file bytes, data bytes.
    #[derive(Default)]
    struct Rollup {
        sessions: usize,
        files: u64,
        file_bytes: u64,
        data_bytes: u64,
    }
    let mut by_category: BTreeMap<FileCategory, Rollup> = BTreeMap::new();
    for ((_, _, category), a) in &acc {
        let entry = by_category.entry(*category).or_default();
        entry.sessions += 1;
        entry.files += a.file_sizes.len() as u64;
        entry.file_bytes += a.file_sizes.values().sum::<u64>();
        entry.data_bytes += a.data_bytes;
    }
    by_category
        .into_iter()
        .map(|(category, r)| CategoryObservation {
            category,
            access_per_byte: if r.file_bytes == 0 {
                0.0
            } else {
                r.data_bytes as f64 / r.file_bytes as f64
            },
            mean_file_size: if r.files == 0 {
                0.0
            } else {
                r.file_bytes as f64 / r.files as f64
            },
            mean_files: r.files as f64 / r.sessions.max(1) as f64,
            pct_sessions: r.sessions as f64 / total_sessions as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uswg_fsc::FileCategory;
    use uswg_usim::{OpRecord, SessionRecord};

    fn log_with(ops: Vec<OpRecord>, sessions: Vec<SessionRecord>) -> UsageLog {
        let mut log = UsageLog::new();
        for o in ops {
            log.push_op(o);
        }
        for s in sessions {
            log.push_session(s);
        }
        log
    }

    fn op(kind: OpKind, bytes: u64, response: u64) -> OpRecord {
        OpRecord {
            at: 0,
            user: 0,
            session: 0,
            op: kind,
            ino: 1,
            bytes,
            file_size: 1000,
            response,
            category: FileCategory::REG_USER_RDONLY,
            retries: 0,
            aborted: false,
        }
    }

    fn session(bytes_accessed: u64, file_bytes: u64, files: u64, response: u64) -> SessionRecord {
        SessionRecord {
            user: 0,
            user_type: 0,
            session: 0,
            start: 0,
            end: 1,
            ops: 1,
            files_referenced: files,
            file_bytes_referenced: file_bytes,
            bytes_accessed,
            bytes_read: bytes_accessed,
            bytes_written: 0,
            total_response: response,
        }
    }

    #[test]
    fn series_extraction() {
        let log = log_with(vec![], vec![session(200, 100, 4, 50)]);
        assert_eq!(
            session_series(&log, SessionMetric::AccessPerByte),
            vec![2.0]
        );
        assert_eq!(
            session_series(&log, SessionMetric::MeanFileSize),
            vec![25.0]
        );
        assert_eq!(
            session_series(&log, SessionMetric::FilesReferenced),
            vec![4.0]
        );
        assert_eq!(
            session_series(&log, SessionMetric::ResponsePerByte),
            vec![0.25]
        );
    }

    #[test]
    fn op_kind_summary_skips_absent_kinds() {
        let log = log_with(
            vec![op(OpKind::Read, 100, 10), op(OpKind::Read, 300, 20)],
            vec![],
        );
        let summaries = op_kind_summaries(&log);
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].kind, OpKind::Read);
        assert_eq!(summaries[0].count, 2);
        assert!((summaries[0].access_size.mean - 200.0).abs() < 1e-12);
        assert!((summaries[0].response.mean - 15.0).abs() < 1e-12);
    }

    #[test]
    fn data_summary_ignores_metadata() {
        let log = log_with(
            vec![
                op(OpKind::Read, 100, 10),
                op(OpKind::Open, 0, 99),
                op(OpKind::Write, 300, 30),
            ],
            vec![],
        );
        let (sizes, responses) = data_op_summary(&log);
        assert_eq!(sizes.n, 2);
        assert!((sizes.mean - 200.0).abs() < 1e-12);
        assert!((responses.mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn response_per_byte_weights_by_bytes() {
        let log = log_with(
            vec![op(OpKind::Read, 100, 100), op(OpKind::Read, 300, 100)],
            vec![],
        );
        // 200 µs over 400 bytes.
        assert!((response_time_per_byte(&log) - 0.5).abs() < 1e-12);
        assert_eq!(response_time_per_byte(&UsageLog::new()), 0.0);
    }

    #[test]
    fn response_per_byte_charges_metadata_calls() {
        // An expensive open is not free, even though it moves no bytes.
        let log = log_with(
            vec![op(OpKind::Open, 0, 400), op(OpKind::Read, 400, 100)],
            vec![],
        );
        // (400 + 100) µs over 400 data bytes.
        assert!((response_time_per_byte(&log) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn stream_stats_match_batch_metrics() {
        // A stream with every wrinkle: metadata calls, zero-byte data
        // calls excluded from the data aggregate, several kinds, and
        // sessions of two user types.
        let mut log = log_with(
            vec![
                op(OpKind::Open, 0, 400),
                op(OpKind::Read, 100, 10),
                op(OpKind::Read, 300, 20),
                op(OpKind::Write, 200, 15),
                op(OpKind::Close, 0, 5),
            ],
            vec![],
        );
        log.push_session(session(400, 100, 2, 50));
        let mut other_type = session(600, 300, 3, 70);
        other_type.user_type = 1;
        log.push_session(other_type);

        let mut stream = StreamLogStats::new();
        for o in log.ops() {
            stream.record_op(o);
        }
        for s in log.sessions() {
            stream.record_session(s);
        }

        assert_eq!(stream.ops, log.ops().len() as u64);
        assert_eq!(stream.sessions, log.sessions().len() as u64);
        let batch_kinds = op_kind_summaries(&log);
        let stream_kinds = stream.op_kind_summaries();
        assert_eq!(batch_kinds.len(), stream_kinds.len());
        for (b, s) in batch_kinds.iter().zip(&stream_kinds) {
            assert_eq!(b.kind, s.kind);
            assert_eq!(b.count, s.count);
            assert!((b.access_size.mean - s.access_size.mean).abs() < 1e-9);
            assert!((b.access_size.std_dev - s.access_size.std_dev).abs() < 1e-9);
            assert!((b.response.mean - s.response.mean).abs() < 1e-9);
            assert_eq!(b.access_size.min, s.access_size.min);
            assert_eq!(b.response.max, s.response.max);
        }
        let (batch_sizes, batch_resp) = data_op_summary(&log);
        let (stream_sizes, stream_resp) = stream.data_op_summary();
        assert_eq!(batch_sizes.n, stream_sizes.n);
        assert!((batch_sizes.mean - stream_sizes.mean).abs() < 1e-9);
        assert!((batch_resp.std_dev - stream_resp.std_dev).abs() < 1e-9);
        assert!((response_time_per_byte(&log) - stream.response_per_byte()).abs() < 1e-12);
        // Per-user-type breakdown.
        let types = stream.user_types();
        assert_eq!(types.len(), 2);
        assert_eq!(types[&0].sessions, 1);
        assert_eq!(types[&0].bytes_accessed, 400);
        assert_eq!(types[&1].sessions, 1);
        assert!((types[&1].response_per_byte() - 70.0 / 600.0).abs() < 1e-12);
        assert_eq!(UserTypeStream::default().response_per_byte(), 0.0);
    }

    #[test]
    fn stream_stats_fold_fault_outcomes() {
        let mut stream = StreamLogStats::new();
        stream.record_op(&op(OpKind::Read, 100, 10)); // clean
        stream.record_op(&OpRecord {
            retries: 2,
            ..op(OpKind::Read, 200, 50)
        });
        stream.record_op(&OpRecord {
            retries: 3,
            aborted: true,
            ..op(OpKind::Write, 400, 90)
        });
        stream.record_op(&OpRecord {
            aborted: true,
            ..op(OpKind::Open, 0, 5) // aborted metadata call moves no bytes
        });
        assert_eq!(stream.retries, 5);
        assert_eq!(stream.aborted_ops, 2);
        assert_eq!(stream.aborted_bytes, 400);
        assert!((stream.abort_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stream.goodput_bytes(), 300);
        // A fault-free stream reports zeros.
        let clean = StreamLogStats::new();
        assert_eq!(clean.abort_rate(), 0.0);
        assert_eq!(clean.goodput_bytes(), 0);
    }

    #[test]
    fn merged_stream_stats_match_a_single_pass() {
        // Two disjoint halves with different kinds, fault outcomes and
        // user types must merge into exactly what one pass accumulates.
        let ops: Vec<OpRecord> = (0..200)
            .map(|i| {
                let kind = OpKind::ALL[i % OpKind::ALL.len()];
                OpRecord {
                    retries: (i % 3) as u32,
                    aborted: i % 17 == 0,
                    ..op(kind, (i as u64 * 37) % 500, (i as u64 * 13) % 90 + 1)
                }
            })
            .collect();
        let sessions: Vec<SessionRecord> = (0..40)
            .map(|i| {
                let mut s = session(i as u64 * 10, 100, 2, i as u64 * 3);
                s.user_type = i % 3;
                s
            })
            .collect();
        let mut whole = StreamLogStats::new();
        for o in &ops {
            whole.record_op(o);
        }
        for s in &sessions {
            whole.record_session(s);
        }
        let mut left = StreamLogStats::new();
        let mut right = StreamLogStats::new();
        for o in &ops[..77] {
            left.record_op(o);
        }
        for o in &ops[77..] {
            right.record_op(o);
        }
        for s in &sessions[..13] {
            left.record_session(s);
        }
        for s in &sessions[13..] {
            right.record_session(s);
        }
        left.merge(&right);
        assert_eq!(left.ops, whole.ops);
        assert_eq!(left.sessions, whole.sessions);
        assert_eq!(left.total_response_us, whole.total_response_us);
        assert_eq!(left.data_bytes, whole.data_bytes);
        assert_eq!(left.retries, whole.retries);
        assert_eq!(left.aborted_ops, whole.aborted_ops);
        assert_eq!(left.aborted_bytes, whole.aborted_bytes);
        assert_eq!(left.user_types(), whole.user_types());
        let merged_kinds = left.op_kind_summaries();
        let whole_kinds = whole.op_kind_summaries();
        assert_eq!(merged_kinds.len(), whole_kinds.len());
        for (m, w) in merged_kinds.iter().zip(&whole_kinds) {
            assert_eq!(m.kind, w.kind);
            assert_eq!(m.count, w.count);
            assert!((m.access_size.mean - w.access_size.mean).abs() < 1e-9);
            assert!((m.access_size.std_dev - w.access_size.std_dev).abs() < 1e-9);
            assert!((m.response.mean - w.response.mean).abs() < 1e-9);
            assert!((m.response.std_dev - w.response.std_dev).abs() < 1e-9);
            assert_eq!(m.access_size.min, w.access_size.min);
            assert_eq!(m.response.max, w.response.max);
        }
        let (m_sizes, m_resp) = left.data_op_summary();
        let (w_sizes, w_resp) = whole.data_op_summary();
        assert_eq!(m_sizes.n, w_sizes.n);
        assert!((m_sizes.std_dev - w_sizes.std_dev).abs() < 1e-9);
        assert!((m_resp.std_dev - w_resp.std_dev).abs() < 1e-9);
        // Merging an empty accumulator changes nothing.
        let before = left.op_kind_summaries();
        left.merge(&StreamLogStats::new());
        assert_eq!(left.op_kind_summaries(), before);
    }

    #[test]
    fn category_observation_counts() {
        let mut ops = vec![op(OpKind::Open, 0, 1), op(OpKind::Read, 500, 1)];
        ops.push(OpRecord {
            ino: 2,
            ..op(OpKind::Read, 250, 1)
        });
        let log = log_with(ops, vec![]);
        let obs = category_observations(&log);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].category, FileCategory::REG_USER_RDONLY);
        assert_eq!(obs[0].mean_files, 2.0);
        assert_eq!(obs[0].pct_sessions, 1.0);
        // Two files of size 1000 each; 750 data bytes over 2000 file bytes.
        assert!((obs[0].mean_file_size - 1000.0).abs() < 1e-12);
        assert!((obs[0].access_per_byte - 0.375).abs() < 1e-12);
    }
}
