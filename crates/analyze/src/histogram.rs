//! Histograms with the paper's before/after smoothing presentation
//! (Figures 5.3–5.5 show each usage distribution "before and after
//! smoothing").

use serde::{Deserialize, Serialize};

/// A fixed-width histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<f64>,
    /// Samples below `lo` or above the last bin (clamped into the edge bins).
    clamped: usize,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` equal-width bins covering
    /// `[lo, hi)`. Out-of-range values are clamped into the edge bins (and
    /// counted in [`Histogram::clamped`]).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0.0; bins];
        let mut clamped = 0;
        for &v in values {
            let raw = ((v - lo) / width).floor();
            let idx = if raw < 0.0 {
                clamped += 1;
                0
            } else if raw >= bins as f64 {
                clamped += 1;
                bins - 1
            } else {
                raw as usize
            };
            counts[idx] += 1.0;
        }
        Self {
            lo,
            width,
            counts,
            clamped,
        }
    }

    /// Builds a histogram spanning the data's own range with `bins` bins.
    /// Empty input produces one empty bin over `[0, 1)`.
    pub fn spanning(values: &[f64], bins: usize) -> Self {
        if values.is_empty() {
            return Self::new(values, 0.0, 1.0, bins.max(1));
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let hi = if hi > lo {
            hi * (1.0 + 1e-9) + 1e-12
        } else {
            lo + 1.0
        };
        Self::new(values, lo, hi, bins)
    }

    /// Bin count values (possibly fractional after smoothing).
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Number of out-of-range samples clamped into edge bins.
    pub fn clamped(&self) -> usize {
        self.clamped
    }

    /// `(bin_center, count)` pairs, for plotting.
    pub fn bins(&self) -> Vec<(f64, f64)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * self.width, c))
            .collect()
    }

    /// Total mass (= number of samples for an unsmoothed histogram).
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// A moving-average smoothed copy ("after smoothing" in Figures
    /// 5.3–5.5). `window` is the half-width: each bin becomes the mean of
    /// the `2·window + 1` bins centred on it (truncated at the edges).
    pub fn smoothed(&self, window: usize) -> Histogram {
        let n = self.counts.len();
        let mut out = vec![0.0; n];
        for (i, slot) in out.iter_mut().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(n);
            let span = &self.counts[lo..hi];
            *slot = span.iter().sum::<f64>() / span.len() as f64;
        }
        Histogram {
            lo: self.lo,
            width: self.width,
            counts: out,
            clamped: self.clamped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_values_correctly() {
        let h = Histogram::new(&[0.5, 1.5, 1.6, 2.5], 0.0, 3.0, 3);
        assert_eq!(h.counts(), &[1.0, 2.0, 1.0]);
        assert_eq!(h.total(), 4.0);
        assert_eq!(h.clamped(), 0);
    }

    #[test]
    fn clamps_out_of_range() {
        let h = Histogram::new(&[-5.0, 10.0], 0.0, 3.0, 3);
        assert_eq!(h.counts(), &[1.0, 0.0, 1.0]);
        assert_eq!(h.clamped(), 2);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(&[], 0.0, 10.0, 5);
        let bins = h.bins();
        assert_eq!(bins[0].0, 1.0);
        assert_eq!(bins[4].0, 9.0);
    }

    #[test]
    fn spanning_covers_extremes() {
        let h = Histogram::spanning(&[2.0, 8.0, 5.0], 3);
        assert_eq!(h.total(), 3.0);
        assert_eq!(h.clamped(), 0);
        // Identical values degrade gracefully.
        let h = Histogram::spanning(&[4.0, 4.0], 4);
        assert_eq!(h.total(), 2.0);
        // Empty input.
        let h = Histogram::spanning(&[], 4);
        assert_eq!(h.total(), 0.0);
    }

    #[test]
    fn smoothing_preserves_shape_not_mass_at_edges() {
        let h = Histogram::new(&[1.5, 1.5, 1.5, 1.5], 0.0, 3.0, 3);
        let s = h.smoothed(1);
        // Peak is flattened.
        assert!(s.counts()[1] < h.counts()[1]);
        // Interior smoothing of [0,4,0] with window 1: [2, 4/3, 2].
        assert!((s.counts()[0] - 2.0).abs() < 1e-12);
        assert!((s.counts()[1] - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_window_zero_is_identity() {
        let h = Histogram::new(&[0.5, 2.5, 2.7], 0.0, 3.0, 3);
        assert_eq!(h.smoothed(0).counts(), h.counts());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(&[], 0.0, 1.0, 0);
    }
}
