//! Acceptance pins for indexed spill scans: a windowed pass reads O(window)
//! bytes (counting-reader budget), sampling thins frames, and a parallel
//! pass merges to the sequential statistics within 1e-9.

use std::io::Cursor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uswg_analyze::metrics::StreamLogStats;
use uswg_analyze::{scan::scan_indexed, CountingReader, ScanOptions};
use uswg_usim::{
    FrameIndex, LogSink, OpRecord, SessionRecord, SpillCodec, SpillReader, SpillRecord, SpillSink,
};

use uswg_fsc::FileCategory;
use uswg_netfs::OpKind;

const FRAME: usize = 64;
const OPS: u64 = 4000;

/// A capture with strictly increasing completion times, several op kinds,
/// fault outcomes and interleaved sessions, at a small frame cap so the
/// file holds many frames.
fn capture() -> Vec<u8> {
    let mut sink = SpillSink::with_options(Vec::new(), SpillCodec::Compressed, FRAME).unwrap();
    for i in 0..OPS {
        sink.record_op(&OpRecord {
            at: i * 10,
            user: (i % 97) as usize,
            session: (i % 7) as u32,
            op: OpKind::ALL[(i % 8) as usize],
            ino: i % 31,
            bytes: (i * 37) % 4096,
            file_size: 10_000,
            response: (i * 13) % 900 + 1,
            category: FileCategory::REG_USER_RDONLY,
            retries: (i % 5 == 0) as u32,
            aborted: i % 113 == 0,
        });
        if i % 60 == 0 {
            sink.record_session(&SessionRecord {
                user: (i % 97) as usize,
                user_type: (i % 3) as usize,
                session: (i / 60) as u32,
                start: i * 10,
                end: i * 10 + 5,
                ops: 60,
                files_referenced: 3,
                file_bytes_referenced: 30_000,
                bytes_accessed: i * 11,
                bytes_read: i * 7,
                bytes_written: i * 4,
                total_response: i * 29,
            });
        }
    }
    sink.finish().unwrap()
}

/// The plain sequential pass: stream every record, filter by window.
fn sequential(bytes: &[u8], opts: &ScanOptions) -> StreamLogStats {
    let mut stats = StreamLogStats::new();
    for record in SpillReader::new(bytes).unwrap() {
        let record = record.unwrap();
        if opts.record_in_window(&record) {
            match record {
                SpillRecord::Op(op) => stats.record_op(&op),
                SpillRecord::Session(s) => stats.record_session(&s),
            }
        }
    }
    stats
}

fn assert_stats_match(a: &StreamLogStats, b: &StreamLogStats) {
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.sessions, b.sessions);
    assert_eq!(a.total_response_us, b.total_response_us);
    assert_eq!(a.data_bytes, b.data_bytes);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.aborted_ops, b.aborted_ops);
    assert_eq!(a.aborted_bytes, b.aborted_bytes);
    assert_eq!(a.user_types(), b.user_types());
    let (a_kinds, b_kinds) = (a.op_kind_summaries(), b.op_kind_summaries());
    assert_eq!(a_kinds.len(), b_kinds.len());
    for (x, y) in a_kinds.iter().zip(&b_kinds) {
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.count, y.count);
        assert!((x.access_size.mean - y.access_size.mean).abs() < 1e-9);
        assert!((x.access_size.std_dev - y.access_size.std_dev).abs() < 1e-9);
        assert!((x.response.mean - y.response.mean).abs() < 1e-9);
        assert!((x.response.std_dev - y.response.std_dev).abs() < 1e-9);
        assert_eq!(x.access_size.min, y.access_size.min);
        assert_eq!(x.response.max, y.response.max);
    }
    let ((a_sz, a_re), (b_sz, b_re)) = (a.data_op_summary(), b.data_op_summary());
    assert_eq!(a_sz.n, b_sz.n);
    assert!((a_sz.mean - b_sz.mean).abs() < 1e-9);
    assert!((a_sz.std_dev - b_sz.std_dev).abs() < 1e-9);
    assert!((a_re.std_dev - b_re.std_dev).abs() < 1e-9);
    assert!((a.response_per_byte() - b.response_per_byte()).abs() < 1e-9);
}

#[test]
fn windowed_scan_reads_only_overlapping_frames() {
    let bytes = capture();
    let index = FrameIndex::load(&mut Cursor::new(&bytes)).unwrap().unwrap();
    // A ~5% window in the middle of the [0, 40_000) µs time line.
    let opts = ScanOptions {
        since: Some(20_000),
        until: Some(22_000),
        ..ScanOptions::default()
    };
    let overlapping: Vec<usize> = index
        .entries()
        .iter()
        .enumerate()
        .filter(|(_, e)| e.overlaps(opts.since, opts.until))
        .map(|(i, _)| i)
        .collect();
    assert!(!overlapping.is_empty());
    assert!(
        overlapping.len() < index.frames() / 10,
        "a 5% window should select well under 10% of {} frames",
        index.frames()
    );
    // Exact byte budget: the file magic plus the spans of the decoded
    // frames (each span = next entry's offset − this entry's offset; the
    // window excludes the last frame, so every decoded frame has a
    // successor). Seeks read nothing.
    let entries = index.entries();
    assert!(*overlapping.last().unwrap() < entries.len() - 1);
    let budget: u64 = 8 + overlapping
        .iter()
        .map(|&i| entries[i + 1].offset - entries[i].offset)
        .sum::<u64>();
    let bytes_read = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&bytes_read);
    let outcome = scan_indexed(&index, &opts, || {
        SpillReader::new(CountingReader::new(
            Cursor::new(&bytes),
            Arc::clone(&counter),
        ))
    })
    .unwrap();
    assert_eq!(outcome.frames_decoded, overlapping.len());
    assert_eq!(outcome.frames_total, index.frames());
    let read = bytes_read.load(Ordering::Relaxed);
    assert!(
        read <= budget,
        "windowed scan read {read} bytes, budget {budget} (file {})",
        bytes.len()
    );
    assert!(read < bytes.len() as u64 / 10, "not O(window)");
    // And the records match the filtered sequential pass exactly.
    assert_stats_match(&outcome.stats, &sequential(&bytes, &opts));
}

#[test]
fn parallel_scan_matches_sequential_within_1e_9() {
    let bytes = capture();
    let index = FrameIndex::load(&mut Cursor::new(&bytes)).unwrap().unwrap();
    let full = sequential(&bytes, &ScanOptions::default());
    for jobs in [2, 4, 7] {
        let opts = ScanOptions {
            jobs,
            ..ScanOptions::default()
        };
        let outcome =
            scan_indexed(&index, &opts, || SpillReader::new(Cursor::new(&bytes))).unwrap();
        assert_eq!(outcome.frames_decoded, index.frames());
        assert_stats_match(&outcome.stats, &full);
    }
    // A parallel *windowed* scan also matches its sequential filter.
    let opts = ScanOptions {
        since: Some(5_000),
        until: Some(30_000),
        jobs: 3,
        ..ScanOptions::default()
    };
    let outcome = scan_indexed(&index, &opts, || SpillReader::new(Cursor::new(&bytes))).unwrap();
    assert_stats_match(&outcome.stats, &sequential(&bytes, &opts));
}

#[test]
fn sampling_thins_the_selected_frames() {
    let bytes = capture();
    let index = FrameIndex::load(&mut Cursor::new(&bytes)).unwrap().unwrap();
    let k = 5u64;
    let opts = ScanOptions {
        sample: Some(k),
        ..ScanOptions::default()
    };
    let outcome = scan_indexed(&index, &opts, || SpillReader::new(Cursor::new(&bytes))).unwrap();
    let expected_frames = index.frames().div_ceil(k as usize);
    assert_eq!(outcome.frames_decoded, expected_frames);
    // The sampled stats hold exactly the records of every k-th frame.
    let expected_records: u64 = index
        .entries()
        .iter()
        .step_by(k as usize)
        .map(|e| u64::from(e.records))
        .sum();
    assert_eq!(outcome.stats.ops + outcome.stats.sessions, expected_records);
    // sample=1 and sample=None decode everything.
    let all = scan_indexed(
        &index,
        &ScanOptions {
            sample: Some(1),
            ..ScanOptions::default()
        },
        || SpillReader::new(Cursor::new(&bytes)),
    )
    .unwrap();
    assert_eq!(all.frames_decoded, index.frames());
    assert_stats_match(&all.stats, &sequential(&bytes, &ScanOptions::default()));
}

#[test]
fn empty_window_scans_nothing() {
    let bytes = capture();
    let index = FrameIndex::load(&mut Cursor::new(&bytes)).unwrap().unwrap();
    let opts = ScanOptions {
        since: Some(1_000_000),
        jobs: 4,
        ..ScanOptions::default()
    };
    let bytes_read = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&bytes_read);
    let outcome = scan_indexed(&index, &opts, || {
        SpillReader::new(CountingReader::new(
            Cursor::new(&bytes),
            Arc::clone(&counter),
        ))
    })
    .unwrap();
    assert_eq!(outcome.frames_decoded, 0);
    assert_eq!(outcome.stats.ops, 0);
    assert_eq!(outcome.stats.sessions, 0);
    // No frames selected → no reader ever opened.
    assert_eq!(bytes_read.load(Ordering::Relaxed), 0);
}
