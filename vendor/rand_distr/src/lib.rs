//! Offline stand-in for the `rand_distr` crate: the [`Gamma`] distribution
//! used by `uswg-distr`'s multi-stage gamma mixtures, sampled with the
//! Marsaglia–Tsang squeeze method (2000), the same algorithm the real crate
//! uses.

use rand::RngCore;

/// Sampling interface, mirroring `rand_distr::Distribution<T>`.
pub trait Distribution<T> {
    /// Draws one variate.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// The gamma distribution `Gamma(shape, scale)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates `Gamma(shape α, scale θ)` with mean `αθ`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when either parameter is non-positive or non-finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, Error> {
        if !(shape.is_finite() && shape > 0.0) {
            return Err(Error("shape must be positive and finite"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(Error("scale must be positive and finite"));
        }
        Ok(Self { shape, scale })
    }
}

#[inline]
fn uniform01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (rng.next_u64() >> 11) as f64 * SCALE
}

/// Standard normal via Box–Muller (the polar form needs rejection; the
/// trigonometric form keeps the RNG stream consumption fixed at two draws).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = (1.0 - uniform01(rng)).max(f64::MIN_POSITIVE); // (0, 1]
    let u2 = uniform01(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape < 1.0 {
            // Boost: Gamma(α) = Gamma(α + 1) · U^{1/α}.
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: self.scale,
            };
            let u = uniform01(rng).max(f64::MIN_POSITIVE);
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        // Marsaglia–Tsang for α >= 1.
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = uniform01(rng).max(f64::MIN_POSITIVE);
            // Squeeze check, then the full acceptance check.
            if u < 1.0 - 0.0331 * x * x * x * x || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return self.scale * d * v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean_var(shape: f64, scale: f64, n: usize) -> (f64, f64) {
        let g = Gamma::new(shape, scale).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        (mean, var)
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn moments_match_large_shape() {
        let (mean, var) = sample_mean_var(4.0, 2.5, 200_000);
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 25.0).abs() < 1.0, "var = {var}");
    }

    #[test]
    fn moments_match_small_shape() {
        // α < 1 exercises the boost path.
        let (mean, var) = sample_mean_var(0.5, 3.0, 200_000);
        assert!((mean - 1.5).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.5).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn samples_are_positive() {
        let g = Gamma::new(1.3, 12.3).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = g.sample(&mut rng);
            assert!(x > 0.0 && x.is_finite());
        }
    }
}
