//! Offline stand-in for the `criterion` crate.
//!
//! Presents the criterion API surface the uswg benches use (`Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, `criterion_group!` / `criterion_main!`) over a
//! simple wall-clock harness: each benchmark is warmed up, then timed over
//! an adaptive number of iterations, and the mean time per iteration is
//! printed together with derived throughput when configured.
//!
//! No statistics, plots or baselines — numbers from this harness are for
//! relative comparisons on one machine in one session.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);

/// The benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a benchmark named `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates from iteration times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `f` as a benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// Runs `f` with `input` as a benchmark in this group.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Work-per-iteration description, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measures the closure handed to it by the benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    // Calibration: run with growing iteration counts until one batch takes
    // a measurable slice of the target, then scale up to fill the target.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET / 10 || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        let grow = if b.elapsed.is_zero() {
            100.0
        } else {
            (TARGET.as_secs_f64() / b.elapsed.as_secs_f64()).min(100.0)
        };
        iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
    };
    // Measurement pass at the calibrated count.
    let measured = ((TARGET.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);
    let mut b = Bencher {
        iters: measured,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.elapsed.as_secs_f64() * 1e9 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            let gib = bytes as f64 * b.iters as f64 / b.elapsed.as_secs_f64() / (1 << 30) as f64;
            format!("  thrpt: {gib:.3} GiB/s")
        }
        Throughput::Elements(n) => {
            let meps = n as f64 * b.iters as f64 / b.elapsed.as_secs_f64() / 1e6;
            format!("  thrpt: {meps:.3} Melem/s")
        }
    });
    println!(
        "{label:<50} time: {:>12}{}",
        format_ns(ns),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Groups benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a set of groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_compose_ids_and_throughput() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(8));
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| black_box(0u64)));
        g.bench_with_input(BenchmarkId::from_parameter(2), &2u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn format_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
    }
}
