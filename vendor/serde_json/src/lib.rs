//! Offline stand-in for the `serde_json` crate: renders and parses JSON text
//! over the vendored serde's [`Value`](serde::Value) tree.
//!
//! Behavioural notes (documented divergences from upstream):
//!
//! * floats render through Rust's shortest round-trip `Display`, so `1.0`
//!   renders as `"1"` (upstream prints `"1.0"`); parsing accepts both, so
//!   round trips are lossless;
//! * non-finite floats render as `null` (upstream does the same);
//! * object key order is the struct field declaration order, as upstream.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the value shapes this shim produces; the `Result` mirrors
/// the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::with_capacity(128);
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
///
/// # Errors
///
/// Never fails for the value shapes this shim produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::with_capacity(256);
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the raw [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, depth + 1, out);
            }
            if !entries.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone lead surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::new("truncated surrogate"))?;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| Error::new("bad surrogate"))?,
                                    16,
                                )
                                .map_err(|_| Error::new("bad surrogate"))?;
                                self.pos += 4;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        let mut out = String::new();
        render(&v, None, 0, &mut out);
        assert_eq!(out, r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_json_indents() {
        let v = Value::Map(vec![("k".into(), Value::U64(1))]);
        let mut out = String::new();
        render(&v, Some(2), 0, &mut out);
        assert_eq!(out, "{\n  \"k\": 1\n}");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::U64(42));
        assert_eq!(parse_value("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse_value("2.5e3").unwrap(), Value::F64(2500.0));
        assert_eq!(parse_value(r#""a\nb""#).unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse_value(r#"{"xs":[1,2.5],"s":"hi","o":{"inner":false}}"#).unwrap();
        assert_eq!(v.get("xs").unwrap().as_seq().unwrap().len(), 2);
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("o").unwrap().get("inner"), Some(&Value::Bool(false)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value(r#""unterminated"#).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse_value(r#""é😀""#).unwrap(), Value::Str("é😀".into()));
    }

    #[test]
    fn float_round_trip_through_text() {
        for &f in &[0.097, 1.0, 1e300, -2.5e-8, 0.1 + 0.2] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<(f64, f64)> = vec![(0.0, 0.5), (1.0, 1.0)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[0,0.5],[1,1]]");
        let back: Vec<(f64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
