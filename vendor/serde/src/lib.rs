//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a zero-copy streaming framework; this shim is a small
//! **value-tree** codec that supports the subset the uswg workspace uses:
//! `#[derive(Serialize, Deserialize)]` on structs and enums (including
//! internally tagged enums with `#[serde(tag = "...", rename_all =
//! "snake_case")]` and field defaults), serialized through an ordered JSON
//! [`Value`] tree. `serde_json` in this workspace renders and parses that
//! tree.
//!
//! Maps preserve insertion order, so struct fields serialize in declaration
//! order and enum tags always come first — matching real serde's JSON output
//! for the shapes this workspace serializes.

pub use serde_derive::{Deserialize, Serialize};

/// An ordered JSON-like value tree: the interchange format between the
/// [`Serialize`]/[`Deserialize`] traits and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered `(key, value)` pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// First value stored under `key`, if this is a map containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a human-readable path/description.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(DeError::custom(format!(
                        "expected unsigned integer, got {v:?}"
                    ))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for std::num::NonZeroUsize {
    fn to_value(&self) -> Value {
        Value::U64(self.get() as u64)
    }
}

impl Deserialize for std::num::NonZeroUsize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = usize::from_value(v)?;
        Self::new(n).ok_or_else(|| DeError::custom("expected a non-zero integer, got 0"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0
                        && (i64::MIN as f64..=i64::MAX as f64).contains(&f) => f as i64,
                    _ => return Err(DeError::custom(format!(
                        "expected signed integer, got {v:?}"
                    ))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN), // real serde_json maps non-finite to null
            _ => Err(DeError::custom(format!("expected number, got {v:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom("expected single-character string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

/// Maps serialize as arrays of `[key, value]` pairs, which supports
/// non-string keys (the upstream crate restricts JSON maps to string keys;
/// this shim keeps composite-keyed indexes serializable).
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        pairs(v)?
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        pairs(v)?
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

/// Iterates the `[key, value]` pairs of a serialized map.
fn pairs(v: &Value) -> Result<impl Iterator<Item = (&Value, &Value)>, DeError> {
    Ok(v.as_seq()
        .ok_or_else(|| DeError::custom(format!("expected pair array for map, got {v:?}")))?
        .iter()
        .map(|entry| match entry.as_seq() {
            Some([k, val]) => Ok((k, val)),
            _ => Err(DeError::custom("expected [key, value] pair")),
        })
        .collect::<Result<Vec<_>, DeError>>()?
        .into_iter())
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v
                    .as_seq()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {v:?}")))?;
                let expected = [$(stringify!($idx)),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {} elements",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn signed_non_negative_serializes_unsigned() {
        // Matches JSON: 5i64 renders as "5", not "-0"-style artifacts.
        assert_eq!(5i64.to_value(), Value::U64(5));
        assert_eq!((-5i64).to_value(), Value::I64(-5));
    }

    #[test]
    fn cross_width_integers() {
        // JSON "5" may parse as U64 but feed a usize or f64 field.
        assert_eq!(usize::from_value(&Value::U64(5)).unwrap(), 5);
        assert_eq!(f64::from_value(&Value::U64(5)).unwrap(), 5.0);
        assert_eq!(u32::from_value(&Value::F64(5.0)).unwrap(), 5);
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
        let opt: Option<u64> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let back: Option<u64> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(back, None);
    }

    #[test]
    fn map_get_finds_keys_in_order() {
        let m = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::U64(2)),
        ]);
        assert_eq!(m.get("b"), Some(&Value::U64(2)));
        assert_eq!(m.get("missing"), None);
    }
}
