//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the uswg test suites use: the [`proptest!`] macro with
//! an optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! range / tuple / `prop::collection::vec` / [`any`] strategies, `prop_map`,
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from upstream: case generation is deterministic (seeded from
//! the test name, so failures reproduce exactly), and failing cases are
//! **not shrunk** — the panic message carries the failing values instead.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256++ source driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from an arbitrary byte string (e.g. a test name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is < 2^-64 * bound.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng| self.sample(rng)),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A type-erased strategy, cloneable so [`prop_oneof!`] arms can be stored.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(hi >= lo, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.next_f64() * 600.0 - 300.0).exp2();
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A `Vec` strategy: length uniform in `len`, elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// The strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Picks one of several strategies per case, uniformly.
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// A union over `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Defines property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Uniformly picks one of the listed strategies for each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let x = (5.0f64..10.0).sample(&mut rng);
            assert!((5.0..10.0).contains(&x));
            let n = (3u8..7).sample(&mut rng);
            assert!((3..7).contains(&n));
            let m = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&m));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::for_test("vec");
        let s = prop::collection::vec(0u8..255, 2..6);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::for_test("map");
        let s = (1u32..5).prop_map(|n| n * 10);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("different");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0.0f64..1.0, n in prop::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(n.len() < 4);
        }
    }
}
