//! A vendored work-stealing thread pool for index-shaped task sets.
//!
//! This is the offline stand-in for what `rayon` would provide if the
//! environment had registry access: workers, each owning a [`Deque`],
//! execute a fixed set of tasks identified by index (`0..tasks`). Workers
//! drain their own deque LIFO and steal FIFO from the others when empty, so
//! uneven task costs — the norm for simulation sweeps, where a 16-user
//! point costs an order of magnitude more than a 1-user point, and for
//! nested sweep × shard grids — rebalance automatically instead of
//! serializing behind the unlucky worker.
//!
//! # One global worker budget
//!
//! Concurrency is governed by a single process-wide [`SharedPool`]: a
//! budget of `available_parallelism() - 1` *helper permits* plus a cache of
//! persistent helper threads. Every [`run_indexed`] call leases helpers
//! from that budget **non-blockingly** — a call that finds the budget
//! exhausted simply runs serially inline on its own thread. That one rule
//! has three consequences the old per-call `thread::scope` pool could not
//! provide:
//!
//! * **No oversubscription.** Nested submissions — a sweep worker whose
//!   point is itself a sharded run — compose to at most `cores` busy
//!   threads process-wide, instead of `jobs × shards`. Callers ask for the
//!   concurrency that matches their task count and let the budget decide.
//! * **No deadlock.** A lease never blocks, so a worker submitting from
//!   inside a task cannot wait on permits its own ancestors hold; it
//!   degrades to the serial loop, which always makes progress.
//! * **Pool reuse.** Helper threads are spawned lazily, capped at the
//!   budget, and parked between jobs — a sweep over hundreds of scopes
//!   wakes the same helpers instead of spawning `workers` fresh threads
//!   per scope.
//!
//! The pool is deliberately minimal: tasks are `usize` indices — callers
//! capture their real inputs in the closure, which keeps the deques free
//! of generic payloads; the task closure returns `bool`, where `false`
//! requests cancellation (in-flight tasks finish; queued tasks are
//! abandoned).
//!
//! Order independence is the caller's contract: tasks must not care when
//! or where they run. Under that contract, results are a pure function of
//! the inputs, so a work-stolen schedule — at whatever concurrency the
//! budget grants — is indistinguishable from the serial one.
//!
//! [`run_indexed_exact`] bypasses the budget and runs the classic scoped
//! pool at exactly the requested width; it exists for tests and for
//! callers measuring the stealing machinery itself.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod deque;

pub use deque::{Deque, Steal};

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Runs `task(i)` for every `i` in `0..tasks`, work-stealing across up to
/// `workers` threads **as granted by the global [`SharedPool`] budget**:
/// `workers` is a request, not a guarantee — the call leases at most
/// `workers - 1` helper threads from the process-wide budget and always
/// contributes the calling thread, so an exhausted budget (or a single-core
/// host) degrades to a plain serial loop. Returns the number of tasks that
/// actually executed.
///
/// `task` returns `true` to continue and `false` to cancel: after a
/// cancellation no *new* task starts (tasks already running on other
/// workers complete). Tasks execute exactly once each, in an unspecified
/// order and with no barrier other than the final join.
pub fn run_indexed<F>(workers: usize, tasks: usize, task: F) -> usize
where
    F: Fn(usize) -> bool + Sync,
{
    SharedPool::global().run_indexed(workers, tasks, task)
}

/// [`run_indexed`] at exactly `min(workers, tasks)` scoped threads,
/// ignoring the shared budget — one-shot over [`std::thread::scope`],
/// nothing outliving the call. Prefer [`run_indexed`]; this entry point is
/// for tests and measurements of the stealing machinery itself.
pub fn run_indexed_exact<F>(workers: usize, tasks: usize, task: F) -> usize
where
    F: Fn(usize) -> bool + Sync,
{
    if workers <= 1 || tasks <= 1 {
        return run_serial(tasks, &task);
    }
    run_stealing(workers, tasks, &task, |w, body| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..w).map(|s| scope.spawn(move || body(s))).collect();
            body(0);
            for h in handles {
                h.join().expect("stealpool worker panicked");
            }
        });
    })
}

/// The plain serial loop both entry points degrade to.
fn run_serial<F: Fn(usize) -> bool>(tasks: usize, task: &F) -> usize {
    let mut ran = 0;
    for i in 0..tasks {
        ran += 1;
        if !task(i) {
            break;
        }
    }
    ran
}

/// The work-stealing core, shared by the budgeted and exact paths: builds
/// the deques, distributes the tasks, and hands `execute` the final worker
/// count plus the worker body (slot 0 is the submitting thread; `execute`
/// must run every slot in `0..w` to completion before returning).
fn run_stealing<F>(
    workers: usize,
    tasks: usize,
    task: &F,
    execute: impl FnOnce(usize, &(dyn Fn(usize) + Sync)),
) -> usize
where
    F: Fn(usize) -> bool + Sync,
{
    let workers = workers.min(tasks);
    // One deque per worker, each big enough to hold every task: stealing
    // can concentrate the whole set on one deque in the worst case, and a
    // full-size buffer makes `push` infallible in practice.
    let deques: Vec<Deque> = (0..workers).map(|_| Deque::with_capacity(tasks)).collect();
    // Block distribution: worker w starts with tasks [w*chunk, ...), pushed
    // in reverse so the owner pops them in ascending input order. Blocks
    // (rather than round-robin) keep neighbouring points on one worker,
    // which matters when adjacent sweep points share page-cache footprints.
    let chunk = tasks.div_ceil(workers);
    for (w, deque) in deques.iter().enumerate() {
        let lo = w * chunk;
        let hi = ((w + 1) * chunk).min(tasks);
        for i in (lo..hi).rev() {
            deque.push(i).expect("deque sized to the full task set");
        }
    }
    let executed = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let run_one = |i: usize| -> bool {
        executed.fetch_add(1, Ordering::Relaxed);
        if !task(i) {
            cancelled.store(true, Ordering::Release);
            return false;
        }
        true
    };
    let worker_loop = |me: usize| {
        'outer: while !cancelled.load(Ordering::Acquire) {
            // Drain our own deque first (newest-first: cache-warm).
            if let Some(i) = deques[me].pop() {
                run_one(i);
                continue;
            }
            // Empty: scan the other deques for work, oldest-first.
            let mut saw_retry = false;
            for off in 1..deques.len() {
                let victim = &deques[(me + off) % deques.len()];
                loop {
                    match victim.steal() {
                        Steal::Stolen(i) => {
                            run_one(i);
                            continue 'outer;
                        }
                        Steal::Retry => {
                            saw_retry = true;
                            std::hint::spin_loop();
                        }
                        Steal::Empty => break,
                    }
                }
            }
            if saw_retry {
                // Someone is mid-claim; try the whole scan again shortly.
                std::thread::yield_now();
                continue;
            }
            break; // every deque empty: all tasks taken
        }
    };
    execute(workers, &worker_loop);
    executed.into_inner()
}

/// A worker budget plus a cache of persistent helper threads. One global
/// instance ([`SharedPool::global`]) governs the whole process; standalone
/// instances exist for tests. See the module documentation for the
/// leasing rules.
pub struct SharedPool {
    capacity: usize,
    inner: Arc<Inner>,
}

impl fmt::Debug for SharedPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedPool")
            .field("capacity", &self.capacity)
            .field("available", &self.available())
            .finish()
    }
}

struct Inner {
    /// Helper permits not currently leased.
    permits: Mutex<usize>,
    state: Mutex<PoolState>,
    /// Signals posted work to parked helpers.
    work: Condvar,
}

struct PoolState {
    /// Posted jobs with unclaimed worker slots, oldest first.
    jobs: VecDeque<Arc<JobInner>>,
    /// Helper threads ever spawned (they persist; never exceeds capacity).
    spawned: usize,
    /// Helpers currently parked on `work`.
    idle: usize,
}

/// One submitted worker body, lifetime-erased: `body` points into the
/// submitter's stack frame, which stays alive until every claimed slot
/// finishes (the submitter blocks in [`SharedPool::run_job`] until then),
/// so the `'static` is a private fiction that never escapes the pool.
struct JobInner {
    body: &'static (dyn Fn(usize) + Sync),
    /// Total worker slots including the submitter's slot 0.
    workers: usize,
    sync: Mutex<JobSync>,
    /// Signals slot completion to the waiting submitter.
    cv: Condvar,
    /// The first payload of a panicking helper slot, rethrown by the
    /// submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct JobSync {
    /// Next helper slot to hand out (slots 1..workers; 0 is the submitter).
    next_slot: usize,
    /// Helper slots that finished running.
    finished: usize,
    /// Set when the submitter retracts the job's unclaimed slots.
    closed: bool,
}

impl SharedPool {
    /// A pool with `capacity` helper permits. The submitting thread of
    /// every call is an extra, un-counted worker, so `capacity` 0 means
    /// every submission runs serially inline.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Arc::new(Inner {
                permits: Mutex::new(capacity),
                state: Mutex::new(PoolState {
                    jobs: VecDeque::new(),
                    spawned: 0,
                    idle: 0,
                }),
                work: Condvar::new(),
            }),
        }
    }

    /// The process-wide pool: `available_parallelism() - 1` helper permits
    /// (0 on a single-core host — everything runs serially inline).
    pub fn global() -> &'static SharedPool {
        static GLOBAL: OnceLock<SharedPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            SharedPool::new(cores.saturating_sub(1))
        })
    }

    /// The pool's helper capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Helper permits not currently leased.
    pub fn available(&self) -> usize {
        *self.inner.permits.lock().expect("permit lock")
    }

    /// Helper threads spawned so far (they persist across jobs).
    pub fn helpers_spawned(&self) -> usize {
        self.inner.state.lock().expect("state lock").spawned
    }

    /// [`run_indexed`] against this pool's budget.
    pub fn run_indexed<F>(&self, workers: usize, tasks: usize, task: F) -> usize
    where
        F: Fn(usize) -> bool + Sync,
    {
        if workers <= 1 || tasks <= 1 {
            return run_serial(tasks, &task);
        }
        let leased = self.lease(workers.min(tasks) - 1);
        // Release on every exit path, including unwinds out of `run_job`.
        let _guard = LeaseGuard {
            pool: self,
            n: leased,
        };
        if leased == 0 {
            return run_serial(tasks, &task);
        }
        run_stealing(leased + 1, tasks, &task, |w, body| {
            self.run_job(w - 1, body)
        })
    }

    /// Takes up to `want` helper permits without blocking; 0 when the
    /// budget is exhausted (the caller then runs serially inline, which is
    /// what makes nested submissions deadlock-free).
    fn lease(&self, want: usize) -> usize {
        let mut permits = self.inner.permits.lock().expect("permit lock");
        let granted = want.min(*permits);
        *permits -= granted;
        granted
    }

    fn release(&self, n: usize) {
        if n > 0 {
            *self.inner.permits.lock().expect("permit lock") += n;
        }
    }

    /// Posts `body` for `helpers` leased helper slots, runs slot 0 on the
    /// calling thread, then retracts whatever the helpers never claimed
    /// and waits for the claimed slots to finish. On return no thread
    /// references `body` — the invariant that makes the lifetime erasure
    /// in [`JobInner`] sound. Panics from any slot are rethrown here.
    fn run_job(&self, helpers: usize, body: &(dyn Fn(usize) + Sync)) {
        // SAFETY: the job (and thus this reference) is only ever invoked by
        // helpers that claim a slot before `closed` is set; this function
        // does not return until every such claim has finished, so the
        // referent outlives every use.
        let body_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        let job = Arc::new(JobInner {
            body: body_static,
            workers: helpers + 1,
            sync: Mutex::new(JobSync {
                next_slot: 1,
                finished: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut st = self.inner.state.lock().expect("state lock");
            st.jobs.push_back(Arc::clone(&job));
            // Spawn lazily: enough parked helpers to cover this job, never
            // more threads than the budget could ever use at once.
            let needed = helpers
                .saturating_sub(st.idle)
                .min(self.capacity - st.spawned);
            for _ in 0..needed {
                st.spawned += 1;
                let inner = Arc::clone(&self.inner);
                std::thread::Builder::new()
                    .name("stealpool-helper".into())
                    .spawn(move || helper_loop(&inner))
                    .expect("spawn stealpool helper");
            }
            self.inner.work.notify_all();
        }
        // The submitter is always slot 0. Defer its panic so the helpers
        // are never abandoned mid-borrow.
        let mine = catch_unwind(AssertUnwindSafe(|| body(0)));
        // Retract unclaimed slots (helpers busy elsewhere never owe us a
        // visit), then wait out the claimed ones.
        let claimed = {
            let mut st = self.inner.state.lock().expect("state lock");
            let mut sync = job.sync.lock().expect("job lock");
            sync.closed = true;
            let claimed = sync.next_slot - 1;
            drop(sync);
            if claimed < helpers {
                if let Some(pos) = st.jobs.iter().position(|j| Arc::ptr_eq(j, &job)) {
                    st.jobs.remove(pos);
                }
            }
            claimed
        };
        let mut sync = job.sync.lock().expect("job lock");
        while sync.finished < claimed {
            sync = job.cv.wait(sync).expect("job lock");
        }
        drop(sync);
        if let Err(payload) = mine {
            resume_unwind(payload);
        }
        let helper_panic = job.panic.lock().expect("panic lock").take();
        if let Some(payload) = helper_panic {
            resume_unwind(payload);
        }
    }
}

/// Returns leased permits when the submission ends, however it ends.
struct LeaseGuard<'a> {
    pool: &'a SharedPool,
    n: usize,
}

impl Drop for LeaseGuard<'_> {
    fn drop(&mut self) {
        self.pool.release(self.n);
    }
}

/// The persistent helper body: claim the oldest job slot, run it, repeat;
/// park on the condvar when no work is posted. Lock order is pool state →
/// job sync everywhere, and neither lock is held while a body runs.
fn helper_loop(inner: &Inner) {
    let mut st = inner.state.lock().expect("state lock");
    loop {
        let mut claim = None;
        while let Some(job) = st.jobs.front() {
            let mut sync = job.sync.lock().expect("job lock");
            if sync.closed || sync.next_slot >= job.workers {
                drop(sync);
                st.jobs.pop_front();
                continue;
            }
            let slot = sync.next_slot;
            sync.next_slot += 1;
            let exhausted = sync.next_slot >= job.workers;
            drop(sync);
            let job = Arc::clone(job);
            if exhausted {
                st.jobs.pop_front();
            }
            claim = Some((job, slot));
            break;
        }
        match claim {
            Some((job, slot)) => {
                drop(st);
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (job.body)(slot))) {
                    // First panic wins; the submitter rethrows it.
                    let mut p = job.panic.lock().expect("panic lock");
                    p.get_or_insert(payload);
                }
                let mut sync = job.sync.lock().expect("job lock");
                sync.finished += 1;
                job.cv.notify_all();
                drop(sync);
                st = inner.state.lock().expect("state lock");
            }
            None => {
                st.idle += 1;
                st = inner.work.wait(st).expect("state lock");
                st.idle -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU8;
    use std::sync::Barrier;

    #[test]
    fn executes_every_task_exactly_once() {
        const N: usize = 500;
        let counts: Vec<AtomicU8> = (0..N).map(|_| AtomicU8::new(0)).collect();
        let ran = run_indexed_exact(4, N, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            true
        });
        assert_eq!(ran, N);
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} ran once");
        }
    }

    #[test]
    fn serial_fallback_runs_in_order() {
        let order = Mutex::new(Vec::new());
        run_indexed_exact(1, 5, |i| {
            order.lock().unwrap().push(i);
            true
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        assert_eq!(run_indexed_exact(4, 0, |_| panic!("no task to run")), 0);
        assert_eq!(run_indexed(4, 0, |_| panic!("no task to run")), 0);
    }

    #[test]
    fn cancellation_stops_dispatch() {
        const N: usize = 10_000;
        let ran = run_indexed_exact(4, N, |i| i < 3);
        // At least the cancelling task ran; the bulk of the queue did not.
        assert!(ran >= 1, "cancelling task ran");
        assert!(ran < N, "cancellation pruned the queue: ran {ran}");
    }

    #[test]
    fn uneven_tasks_rebalance() {
        // One task is 100× the others; with stealing, total wall clock must
        // be well under the serial sum. (Smoke-level: on a single-core CI
        // host this still passes because the assertion is on completion,
        // not timing.)
        const N: usize = 64;
        let done: Vec<AtomicU8> = (0..N).map(|_| AtomicU8::new(0)).collect();
        run_indexed_exact(4, N, |i| {
            let spins = if i == 0 { 100_000 } else { 1_000 };
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            done[i].fetch_add(1, Ordering::Relaxed);
            true
        });
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn workers_capped_at_task_count() {
        // More workers than tasks must not deadlock or double-run.
        let counts: Vec<AtomicU8> = (0..3).map(|_| AtomicU8::new(0)).collect();
        let ran = run_indexed_exact(16, 3, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            true
        });
        assert_eq!(ran, 3);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn exhausted_budget_degrades_to_in_order_serial() {
        let pool = SharedPool::new(0);
        let order = Mutex::new(Vec::new());
        let ran = pool.run_indexed(8, 5, |i| {
            order.lock().unwrap().push(i);
            true
        });
        assert_eq!(ran, 5);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.helpers_spawned(), 0, "no threads for a serial run");
    }

    #[test]
    fn leases_return_to_the_budget() {
        let pool = SharedPool::new(3);
        for _ in 0..4 {
            let ran = pool.run_indexed(8, 64, |_| true);
            assert_eq!(ran, 64);
            assert_eq!(pool.available(), 3, "every lease returned");
        }
        assert!(
            pool.helpers_spawned() <= 3,
            "threads capped at capacity and reused across jobs"
        );
    }

    #[test]
    fn helpers_persist_across_jobs() {
        // A 2-worker barrier forces a helper to actually claim its slot in
        // both jobs; the second job must reuse the first job's thread.
        let pool = SharedPool::new(1);
        for _ in 0..2 {
            let barrier = Barrier::new(2);
            let ran = pool.run_indexed(2, 2, |_| {
                barrier.wait();
                true
            });
            assert_eq!(ran, 2);
        }
        assert_eq!(pool.helpers_spawned(), 1, "one helper, reused");
    }

    #[test]
    fn nested_submissions_stay_within_budget_and_finish() {
        // Outer tasks submit inner runs against the same pool. Whatever the
        // interleaving, every inner task runs exactly once and the number
        // of concurrently running bodies never exceeds the budget + the
        // submitter.
        let pool = SharedPool::new(2);
        const OUTER: usize = 4;
        const INNER: usize = 8;
        let counts: Vec<AtomicU8> = (0..OUTER * INNER).map(|_| AtomicU8::new(0)).collect();
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let ran = pool.run_indexed(OUTER, OUTER, |o| {
            let inner_ran = pool.run_indexed(INNER, INNER, |i| {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                counts[o * INNER + i].fetch_add(1, Ordering::Relaxed);
                running.fetch_sub(1, Ordering::SeqCst);
                true
            });
            inner_ran == INNER
        });
        assert_eq!(ran, OUTER);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert!(
            peak.load(Ordering::SeqCst) <= pool.capacity() + 1,
            "peak concurrency {} exceeded budget {} + submitter",
            peak.load(Ordering::SeqCst),
            pool.capacity()
        );
    }

    #[test]
    fn task_panic_propagates_and_releases_the_lease() {
        let pool = SharedPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(4, 16, |i| {
                assert!(i != 7, "boom");
                true
            })
        }));
        assert!(result.is_err(), "panic reaches the submitter");
        assert_eq!(pool.available(), 2, "lease returned despite the panic");
        // The pool survives: the next job runs normally.
        assert_eq!(pool.run_indexed(4, 4, |_| true), 4);
    }
}
