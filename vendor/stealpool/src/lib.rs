//! A vendored work-stealing thread pool for index-shaped task sets.
//!
//! This is the offline stand-in for what `rayon` would provide if the
//! environment had registry access: a pool of scoped workers, each owning a
//! [`Deque`], executing a fixed set of tasks identified by index
//! (`0..tasks`). Workers drain their own deque LIFO and steal FIFO from
//! the others when empty, so uneven task costs — the norm for simulation
//! sweeps, where a 16-user point costs an order of magnitude more than a
//! 1-user point, and for nested sweep × replication grids — rebalance
//! automatically instead of serializing behind the unlucky worker.
//!
//! The pool is deliberately minimal:
//!
//! * tasks are `usize` indices — callers capture their real inputs in the
//!   closure, which keeps the deque free of generic payloads (and thereby
//!   free of `unsafe`);
//! * execution is one-shot over `std::thread::scope` — no global pool,
//!   no detached threads, nothing outliving the call;
//! * the task closure returns `bool`: `false` requests cancellation, and
//!   the pool stops dispatching (in-flight tasks finish; queued tasks are
//!   abandoned).
//!
//! Order independence is the caller's contract: tasks must not care when
//! or where they run. Under that contract, results are a pure function of
//! the inputs, so a work-stolen schedule is indistinguishable from the
//! serial one.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod deque;

pub use deque::{Deque, Steal};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Runs `task(i)` for every `i` in `0..tasks` across `workers` OS threads
/// (the calling thread is worker 0), work-stealing between them. Returns
/// the number of tasks that actually executed.
///
/// With `workers <= 1` or `tasks <= 1` the tasks run inline on the calling
/// thread — single-core hosts short-circuit to a plain serial loop with no
/// threads, no atomics and no deques.
///
/// `task` returns `true` to continue and `false` to cancel: after a
/// cancellation no *new* task starts (tasks already running on other
/// workers complete). Tasks execute exactly once each, in an unspecified
/// order and with no barrier other than the final join.
pub fn run_indexed<F>(workers: usize, tasks: usize, task: F) -> usize
where
    F: Fn(usize) -> bool + Sync,
{
    if workers <= 1 || tasks <= 1 {
        let mut ran = 0;
        for i in 0..tasks {
            ran += 1;
            if !task(i) {
                break;
            }
        }
        return ran;
    }
    let workers = workers.min(tasks);
    // One deque per worker, each big enough to hold every task: stealing
    // can concentrate the whole set on one deque in the worst case, and a
    // full-size buffer makes `push` infallible in practice.
    let deques: Vec<Deque> = (0..workers).map(|_| Deque::with_capacity(tasks)).collect();
    // Block distribution: worker w starts with tasks [w*chunk, ...), pushed
    // in reverse so the owner pops them in ascending input order. Blocks
    // (rather than round-robin) keep neighbouring points on one worker,
    // which matters when adjacent sweep points share page-cache footprints.
    let chunk = tasks.div_ceil(workers);
    for (w, deque) in deques.iter().enumerate() {
        let lo = w * chunk;
        let hi = ((w + 1) * chunk).min(tasks);
        for i in (lo..hi).rev() {
            deque.push(i).expect("deque sized to the full task set");
        }
    }
    let executed = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let run_one = |i: usize| -> bool {
        executed.fetch_add(1, Ordering::Relaxed);
        if !task(i) {
            cancelled.store(true, Ordering::Release);
            return false;
        }
        true
    };
    let worker_loop = |me: usize| {
        'outer: while !cancelled.load(Ordering::Acquire) {
            // Drain our own deque first (newest-first: cache-warm).
            if let Some(i) = deques[me].pop() {
                run_one(i);
                continue;
            }
            // Empty: scan the other deques for work, oldest-first.
            let mut saw_retry = false;
            for off in 1..deques.len() {
                let victim = &deques[(me + off) % deques.len()];
                loop {
                    match victim.steal() {
                        Steal::Stolen(i) => {
                            run_one(i);
                            continue 'outer;
                        }
                        Steal::Retry => {
                            saw_retry = true;
                            std::hint::spin_loop();
                        }
                        Steal::Empty => break,
                    }
                }
            }
            if saw_retry {
                // Someone is mid-claim; try the whole scan again shortly.
                std::thread::yield_now();
                continue;
            }
            break; // every deque empty: all tasks taken
        }
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers)
            .map(|w| scope.spawn(move || worker_loop(w)))
            .collect();
        worker_loop(0);
        for h in handles {
            h.join().expect("stealpool worker panicked");
        }
    });
    executed.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU8;

    #[test]
    fn executes_every_task_exactly_once() {
        const N: usize = 500;
        let counts: Vec<AtomicU8> = (0..N).map(|_| AtomicU8::new(0)).collect();
        let ran = run_indexed(4, N, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            true
        });
        assert_eq!(ran, N);
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} ran once");
        }
    }

    #[test]
    fn serial_fallback_runs_in_order() {
        let order = std::sync::Mutex::new(Vec::new());
        run_indexed(1, 5, |i| {
            order.lock().unwrap().push(i);
            true
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        assert_eq!(run_indexed(4, 0, |_| panic!("no task to run")), 0);
    }

    #[test]
    fn cancellation_stops_dispatch() {
        const N: usize = 10_000;
        let ran = run_indexed(4, N, |i| i < 3);
        // At least the cancelling task ran; the bulk of the queue did not.
        assert!(ran >= 1, "cancelling task ran");
        assert!(ran < N, "cancellation pruned the queue: ran {ran}");
    }

    #[test]
    fn uneven_tasks_rebalance() {
        // One task is 100× the others; with stealing, total wall clock must
        // be well under the serial sum. (Smoke-level: on a single-core CI
        // host this still passes because the assertion is on completion,
        // not timing.)
        const N: usize = 64;
        let done: Vec<AtomicU8> = (0..N).map(|_| AtomicU8::new(0)).collect();
        run_indexed(4, N, |i| {
            let spins = if i == 0 { 100_000 } else { 1_000 };
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            done[i].fetch_add(1, Ordering::Relaxed);
            true
        });
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn workers_capped_at_task_count() {
        // More workers than tasks must not deadlock or double-run.
        let counts: Vec<AtomicU8> = (0..3).map(|_| AtomicU8::new(0)).collect();
        let ran = run_indexed(16, 3, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            true
        });
        assert_eq!(ran, 3);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
