//! A fixed-capacity Chase–Lev work-stealing deque specialized to `usize`
//! payloads.
//!
//! The owner pushes and pops at the *bottom* (LIFO, cache-warm); thieves
//! steal from the *top* (FIFO, oldest first), so contention only arises on
//! the last remaining element. The algorithm is the C11 formulation of
//! Lê, Pop, Cohen & Zappa Nardelli, "Correct and Efficient Work-Stealing
//! for Weak Memory Models" (PPoPP 2013), with two deliberate
//! simplifications that make it expressible in entirely safe Rust:
//!
//! * **Payloads are `usize`** (task indices), stored in `AtomicUsize`
//!   cells. The racy buffer reads of the original are plain atomic loads
//!   here, so there is no undefined behavior to reason about — the memory
//!   model arguments of the paper carry over verbatim.
//! * **Capacity is fixed** at construction (rounded up to a power of two).
//!   The pool sizes each deque to the total task count, which the deque can
//!   never exceed, so the growth path of the original is unreachable and
//!   omitted. `push` reports overflow instead of resizing.
//!
//! Single-owner discipline: `push`/`pop` must only be called by one thread
//! at a time (the owner). The API cannot enforce that statically without
//! splitting handles; violating it cannot corrupt memory (every cell is an
//! atomic), but it can lose or duplicate elements. [`crate::run_indexed`]
//! upholds the discipline by construction.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Stole this element.
    Stolen(usize),
}

/// A fixed-capacity Chase–Lev deque of `usize` elements.
#[derive(Debug)]
pub struct Deque {
    /// Next slot the owner will push into (grows without bound; slot =
    /// `bottom & mask`).
    bottom: AtomicIsize,
    /// Oldest live element (thieves advance this).
    top: AtomicIsize,
    buf: Box<[AtomicUsize]>,
    mask: usize,
}

impl Deque {
    /// A deque holding at most `capacity` elements (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let mut buf = Vec::with_capacity(cap);
        buf.resize_with(cap, || AtomicUsize::new(0));
        Self {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buf: buf.into_boxed_slice(),
            mask: cap - 1,
        }
    }

    #[inline]
    fn slot(&self, index: isize) -> &AtomicUsize {
        &self.buf[index as usize & self.mask]
    }

    /// Number of elements currently held (a racy snapshot).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque currently looks empty (a racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: pushes `value` at the bottom. Returns `Err(value)` if
    /// the deque is at capacity (the pool never triggers this: capacity is
    /// the total task count).
    pub fn push(&self, value: usize) -> Result<(), usize> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if (b - t) as usize > self.mask {
            return Err(value);
        }
        self.slot(b).store(value, Ordering::Relaxed);
        // Publish the element before publishing the new bottom, so a thief
        // that observes the incremented bottom also observes the value.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pops the most recently pushed element, or `None` when
    /// empty.
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The reservation of slot `b` must be globally ordered against any
        // concurrent thief's claim on `top` (the store-load pair below is
        // exactly the SC fence of the PPoPP'13 algorithm).
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let value = self.slot(b).load(Ordering::Relaxed);
        if t < b {
            return Some(value); // more than one element: no race possible
        }
        // Exactly one element: race any thief for it via `top`.
        let won = self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok();
        self.bottom.store(b + 1, Ordering::Relaxed);
        won.then_some(value)
    }

    /// Any thread: tries to steal the oldest element.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let value = self.slot(t).load(Ordering::Relaxed);
        // Claim the element; failure means the owner popped it or another
        // thief beat us to it.
        match self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
        {
            Ok(_) => Steal::Stolen(value),
            Err(_) => Steal::Retry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn owner_sees_lifo_order() {
        let d = Deque::with_capacity(8);
        for v in 0..5 {
            d.push(v).unwrap();
        }
        assert_eq!(d.len(), 5);
        for v in (0..5).rev() {
            assert_eq!(d.pop(), Some(v));
        }
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn thief_sees_fifo_order() {
        let d = Deque::with_capacity(8);
        for v in 0..5 {
            d.push(v).unwrap();
        }
        for v in 0..5 {
            assert_eq!(d.steal(), Steal::Stolen(v));
        }
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn push_reports_overflow_and_recovers() {
        let d = Deque::with_capacity(2);
        d.push(1).unwrap();
        d.push(2).unwrap();
        assert_eq!(d.push(3), Err(3));
        assert_eq!(d.pop(), Some(2));
        d.push(3).unwrap();
        assert_eq!(d.steal(), Steal::Stolen(1));
    }

    #[test]
    fn wraparound_reuses_slots() {
        let d = Deque::with_capacity(4);
        for round in 0..10 {
            for v in 0..3 {
                d.push(round * 3 + v).unwrap();
            }
            for v in (0..3).rev() {
                assert_eq!(d.pop(), Some(round * 3 + v));
            }
        }
    }

    /// Owner pops while several thieves steal: every element is delivered
    /// exactly once (checksum of a permutation) and none is duplicated.
    #[test]
    fn concurrent_steals_deliver_each_element_once() {
        const N: usize = 20_000;
        const THIEVES: usize = 4;
        let d = Deque::with_capacity(N);
        let stolen_sum = AtomicU64::new(0);
        let stolen_count = AtomicUsize::new(0);
        for v in 0..N {
            d.push(v).unwrap();
        }
        let (owner_sum, owner_count) = std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                scope.spawn(|| loop {
                    match d.steal() {
                        Steal::Stolen(v) => {
                            stolen_sum.fetch_add(v as u64, Ordering::Relaxed);
                            stolen_count.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => break,
                    }
                });
            }
            let mut sum = 0u64;
            let mut count = 0usize;
            while let Some(v) = d.pop() {
                sum += v as u64;
                count += 1;
            }
            (sum, count)
        });
        let total = owner_sum + stolen_sum.load(Ordering::Relaxed);
        let n = owner_count + stolen_count.load(Ordering::Relaxed);
        assert_eq!(n, N, "every element delivered exactly once");
        assert_eq!(total, (N as u64 - 1) * N as u64 / 2);
    }
}
