//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external `rand` dependency is replaced by this vendored shim exposing the
//! subset of the API the workload generator uses:
//!
//! * [`RngCore`] — the object-safe random-source trait (`next_u32`,
//!   `next_u64`, `fill_bytes`);
//! * [`SeedableRng`] — construction from a `u64` seed;
//! * [`rngs::StdRng`] — a deterministic, high-quality generator.
//!
//! `StdRng` here is **xoshiro256++** seeded through SplitMix64 — not the
//! ChaCha12 generator of the real crate — so absolute sampled values differ
//! from upstream `rand`, but every statistical property the simulator relies
//! on (equidistribution, long period, stream independence under distinct
//! seeds) holds, and all runs are reproducible from the seed alone.

/// The core trait of a random source. Object safe, so simulation code can
/// hold `&mut dyn RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded via SplitMix64 so that every `u64` seed — including 0 — yields
    /// a well-mixed initial state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&x| x != 0));
        assert!(draws.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn uniform_bits_mean() {
        // Top-bit frequency of 10k draws should be near 1/2.
        let mut r = StdRng::seed_from_u64(7);
        let ones = (0..10_000).filter(|_| r.next_u64() >> 63 == 1).count();
        assert!((4_700..5_300).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn dyn_compatible() {
        let mut r = StdRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut r;
        let _ = dynr.next_u32();
        let _ = dynr.next_u64();
    }
}
