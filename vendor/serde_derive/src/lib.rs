//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the workspace's value-tree `serde::Serialize` /
//! `serde::Deserialize` traits for structs and enums, supporting the
//! attribute subset the uswg workspace uses:
//!
//! * container: `#[serde(tag = "...")]` (internally tagged enums),
//!   `#[serde(rename_all = "snake_case")]`;
//! * field: `#[serde(default)]`, `#[serde(default = "path")]`.
//!
//! The parser walks the raw token stream (no `syn`), which is sufficient for
//! non-generic type definitions; generic types are rejected with a clear
//! error.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_definition(input);
    gen_serialize(&def)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_definition(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct SerdeAttrs {
    /// `Some(None)` = `default`, `Some(Some(path))` = `default = "path"`.
    default: Option<Option<String>>,
    tag: Option<String>,
    rename_all_snake: bool,
}

struct Field {
    name: String,
    default: Option<Option<String>>,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Definition {
    name: String,
    attrs: SerdeAttrs,
    shape: Shape,
}

impl Definition {
    fn wire_name(&self, variant: &str) -> String {
        if self.attrs.rename_all_snake {
            to_snake_case(variant)
        } else {
            variant.to_string()
        }
    }
}

fn to_snake_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 4);
    for (i, c) in s.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading `#[...]` attributes, folding `#[serde(...)]` items into
/// the returned attrs and skipping everything else (doc comments, `#[default]`
/// and the like).
fn take_attrs(it: &mut TokenIter) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                let Some(TokenTree::Group(g)) = it.next() else {
                    panic!("expected [...] after #");
                };
                let mut inner = g.stream().into_iter().peekable();
                if let Some(TokenTree::Ident(id)) = inner.peek() {
                    if id.to_string() == "serde" {
                        inner.next();
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            parse_serde_items(args.stream(), &mut attrs);
                        }
                    }
                }
            }
            _ => return attrs,
        }
    }
}

fn parse_serde_items(ts: TokenStream, attrs: &mut SerdeAttrs) {
    let mut it = ts.into_iter().peekable();
    while let Some(tok) = it.next() {
        let TokenTree::Ident(key) = tok else { continue };
        let key = key.to_string();
        let value = match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Literal(lit)) => Some(unquote(&lit.to_string())),
                    other => panic!("expected string literal after `{key} =`, got {other:?}"),
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("default", v) => attrs.default = Some(v),
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("rename_all", Some(v)) => {
                if v != "snake_case" {
                    panic!("only rename_all = \"snake_case\" is supported, got {v:?}");
                }
                attrs.rename_all_snake = true;
            }
            (other, _) => panic!("unsupported serde attribute `{other}`"),
        }
        // Skip the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Skips `pub` / `pub(crate)` style visibility.
fn skip_visibility(it: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

/// Skips a type, stopping at a top-level `,` (consumed) or end of stream.
fn skip_type(it: &mut TokenIter) {
    let mut angle_depth = 0i32;
    while let Some(tok) = it.peek() {
        if let TokenTree::Punct(p) = tok {
            let c = p.as_char();
            if c == '<' {
                angle_depth += 1;
            } else if c == '>' {
                angle_depth -= 1;
            } else if c == ',' && angle_depth == 0 {
                it.next();
                return;
            }
        }
        it.next();
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        let attrs = take_attrs(&mut it);
        skip_visibility(&mut it);
        let Some(TokenTree::Ident(name)) = it.next() else {
            return fields;
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut it);
        fields.push(Field {
            name: name.to_string(),
            default: attrs.default,
        });
    }
}

/// Counts the fields of a tuple struct/variant body `(A, B, ...)`.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut it = ts.into_iter().peekable();
    let mut count = 0;
    loop {
        let _ = take_attrs(&mut it);
        skip_visibility(&mut it);
        if it.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type(&mut it);
    }
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = ts.into_iter().peekable();
    loop {
        let _ = take_attrs(&mut it); // variant-level serde attrs unsupported, drops #[default]
        let Some(TokenTree::Ident(name)) = it.next() else {
            return variants;
        };
        let shape = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
    }
}

fn parse_definition(input: TokenStream) -> Definition {
    let mut it = input.into_iter().peekable();
    let attrs = take_attrs(&mut it);
    skip_visibility(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported by the vendored serde shim");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other} {name}`"),
    };
    Definition { name, attrs, shape }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

const S: &str = "::std::string::String::from";

fn gen_serialize(def: &Definition) -> String {
    let name = &def.name;
    let body = match &def.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({S}(\"{n}\"), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_variant(def, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_variant(def: &Definition, v: &Variant) -> String {
    let ty = &def.name;
    let vn = &v.name;
    let wire = def.wire_name(vn);
    match (&v.shape, &def.attrs.tag) {
        (VariantShape::Unit, None) => {
            format!("{ty}::{vn} => ::serde::Value::Str({S}(\"{wire}\")),")
        }
        (VariantShape::Unit, Some(tag)) => format!(
            "{ty}::{vn} => ::serde::Value::Map(::std::vec![({S}(\"{tag}\"), ::serde::Value::Str({S}(\"{wire}\")))]),"
        ),
        (VariantShape::Tuple(1), None) => format!(
            "{ty}::{vn}(__f0) => ::serde::Value::Map(::std::vec![({S}(\"{wire}\"), ::serde::Serialize::to_value(__f0))]),"
        ),
        (VariantShape::Tuple(1), Some(tag)) => format!(
            "{ty}::{vn}(__f0) => {{\n\
                let mut __m = ::std::vec![({S}(\"{tag}\"), ::serde::Value::Str({S}(\"{wire}\")))];\n\
                match ::serde::Serialize::to_value(__f0) {{\n\
                    ::serde::Value::Map(__inner) => __m.extend(__inner),\n\
                    __other => __m.push(({S}(\"value\"), __other)),\n\
                }}\n\
                ::serde::Value::Map(__m)\n\
            }}"
        ),
        (VariantShape::Tuple(n), _) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{ty}::{vn}({binders}) => ::serde::Value::Map(::std::vec![({S}(\"{wire}\"), ::serde::Value::Seq(::std::vec![{items}]))]),",
                binders = binders.join(", "),
                items = items.join(", ")
            )
        }
        (VariantShape::Named(fields), Some(tag)) => {
            let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({S}(\"{n}\"), ::serde::Serialize::to_value({n}))", n = f.name))
                .collect();
            format!(
                "{ty}::{vn} {{ {binders} }} => ::serde::Value::Map(::std::vec![({S}(\"{tag}\"), ::serde::Value::Str({S}(\"{wire}\"))), {entries}]),",
                binders = binders.join(", "),
                entries = entries.join(", ")
            )
        }
        (VariantShape::Named(fields), None) => {
            let binders: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({S}(\"{n}\"), ::serde::Serialize::to_value({n}))", n = f.name))
                .collect();
            format!(
                "{ty}::{vn} {{ {binders} }} => ::serde::Value::Map(::std::vec![({S}(\"{wire}\"), ::serde::Value::Map(::std::vec![{entries}]))]),",
                binders = binders.join(", "),
                entries = entries.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// The expression extracting field `f` from the map expression `src`.
fn field_extract(ty: &str, f: &Field, src: &str) -> String {
    let n = &f.name;
    let missing = match &f.default {
        None => format!(
            "return ::std::result::Result::Err(::serde::DeError::custom(\"missing field `{n}` in {ty}\"))"
        ),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{n}: match {src}.get(\"{n}\") {{\n\
            ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
            ::std::option::Option::None => {missing},\n\
        }}"
    )
}

fn gen_deserialize(def: &Definition) -> String {
    let name = &def.name;
    let body = match &def.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| field_extract(name, f, "__v"))
                .collect();
            format!(
                "if __v.as_map().is_none() {{\n\
                    return ::std::result::Result::Err(::serde::DeError::custom(\"expected map for {name}\"));\n\
                }}\n\
                ::std::result::Result::Ok({name} {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                 if __seq.len() != {n} {{\n\
                    return ::std::result::Result::Err(::serde::DeError::custom(\"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(def, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
            fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                {body}\n\
            }}\n\
         }}"
    )
}

fn gen_deserialize_enum(def: &Definition, variants: &[Variant]) -> String {
    let name = &def.name;
    // Unit variants arrive as bare strings (externally tagged form).
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!(
                "\"{wire}\" => ::std::result::Result::Ok({name}::{vn}),",
                wire = def.wire_name(&v.name),
                vn = v.name
            )
        })
        .collect();
    let str_branch = if unit_arms.is_empty() {
        format!(
            "::std::result::Result::Err(::serde::DeError::custom(\"unexpected string for {name}\"))"
        )
    } else {
        format!(
            "match __s.as_str() {{\n{arms}\n__other => ::std::result::Result::Err(::serde::DeError::custom(\
                ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}}",
            arms = unit_arms.join("\n")
        )
    };

    let map_branch = if let Some(tag) = &def.attrs.tag {
        // Internally tagged: the tag names the variant; remaining keys are
        // the variant's own payload.
        let arms: Vec<String> = variants
            .iter()
            .map(|v| {
                let wire = def.wire_name(&v.name);
                let vn = &v.name;
                let build = match &v.shape {
                    VariantShape::Unit => format!("::std::result::Result::Ok({name}::{vn})"),
                    VariantShape::Tuple(1) => format!(
                        "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__v)?))"
                    ),
                    VariantShape::Tuple(_) => format!(
                        "::std::result::Result::Err(::serde::DeError::custom(\"tuple variant `{vn}` cannot be internally tagged\"))"
                    ),
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| field_extract(name, f, "__v"))
                            .collect();
                        format!(
                            "::std::result::Result::Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        )
                    }
                };
                format!("\"{wire}\" => {{ {build} }}")
            })
            .collect();
        format!(
            "let __tag = __v.get(\"{tag}\").and_then(|__t| __t.as_str()).ok_or_else(|| \
                ::serde::DeError::custom(\"missing tag `{tag}` for {name}\"))?;\n\
             match __tag {{\n{arms}\n__other => ::std::result::Result::Err(::serde::DeError::custom(\
                ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}}",
            arms = arms.join("\n")
        )
    } else {
        // Externally tagged: a single-entry map keyed by the variant name.
        let arms: Vec<String> = variants
            .iter()
            .filter(|v| !matches!(v.shape, VariantShape::Unit))
            .map(|v| {
                let wire = def.wire_name(&v.name);
                let vn = &v.name;
                let build = match &v.shape {
                    VariantShape::Unit => unreachable!("filtered above"),
                    VariantShape::Tuple(1) => format!(
                        "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__val)?))"
                    ),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(&__seq[{i}])?")
                            })
                            .collect();
                        format!(
                            "let __seq = __val.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected array payload for {name}::{vn}\"))?;\n\
                             if __seq.len() != {n} {{\n\
                                return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}::{vn}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn}({items}))",
                            items = items.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| field_extract(name, f, "__val"))
                            .collect();
                        format!(
                            "::std::result::Result::Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        )
                    }
                };
                format!("\"{wire}\" => {{ {build} }}")
            })
            .collect();
        if arms.is_empty() {
            format!(
                "::std::result::Result::Err(::serde::DeError::custom(\"expected string for {name}\"))"
            )
        } else {
            format!(
                "if __entries.len() != 1 {{\n\
                    return ::std::result::Result::Err(::serde::DeError::custom(\"expected single-key map for {name}\"));\n\
                 }}\n\
                 let (__key, __val) = &__entries[0];\n\
                 match __key.as_str() {{\n{arms}\n__other => ::std::result::Result::Err(::serde::DeError::custom(\
                    ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n}}",
                arms = arms.join("\n")
            )
        }
    };

    format!(
        "match __v {{\n\
            ::serde::Value::Str(__s) => {str_branch},\n\
            ::serde::Value::Map(__entries) => {{\n\
                let _ = __entries;\n\
                {map_branch}\n\
            }}\n\
            __other => ::std::result::Result::Err(::serde::DeError::custom(\
                ::std::format!(\"expected string or map for {name}, got {{__other:?}}\"))),\n\
        }}"
    )
}
