//! Tour of the Section 6.2 extensions: random (database-style) access,
//! Markov-modulated user phases, diurnal inter-login times, and a
//! distributed NFS with explicit file placement.
//!
//! ```sh
//! cargo run --release -p uswg-examples --bin extensions_tour
//! ```

use uswg_core::experiment::{user_sweep, ModelConfig};
use uswg_core::{
    metrics, presets, AccessPattern, DistributionSpec, DiurnalProfile, PhaseModel, PopulationSpec,
    Table, UserTypeSpec, WorkloadSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut base = WorkloadSpec::paper_default()?;
    base.run.sessions_per_user = 6;
    base.fsc = base.fsc.with_files_per_user(20)?.with_shared_files(40)?;

    // 1. Sequential vs database-style random access (Section 4.2).
    println!("== 1. Sequential vs random (direct) file access ==\n");
    let mut table = Table::new(vec!["access pattern", "resp/byte (µs/B)", "lseek share"]);
    for (label, pattern) in [
        ("sequential (paper)", AccessPattern::Sequential),
        ("random / direct", AccessPattern::Random),
    ] {
        let mut cats = presets::table_5_2_usages();
        for c in &mut cats {
            c.access_pattern = pattern;
        }
        let user = UserTypeSpec::new(
            label,
            DistributionSpec::exponential(presets::THINK_HEAVY),
            DistributionSpec::exponential(presets::ACCESS_SIZE_MEAN),
            cats,
        );
        let spec = base.clone().with_population(PopulationSpec::single(user)?);
        let report = spec.run_des(&ModelConfig::default_nfs())?;
        let seeks = report
            .log
            .ops()
            .iter()
            .filter(|o| o.op == uswg_core::OpKind::Seek)
            .count();
        table.row(vec![
            label.to_string(),
            format!("{:.3}", metrics::response_time_per_byte(&report.log)),
            format!(
                "{:.0}%",
                100.0 * seeks as f64 / report.log.ops().len() as f64
            ),
        ]);
    }
    println!("{}", table.render());

    // 2. Markov phases: I/O-bound bursts alternating with CPU-bound lulls.
    println!("== 2. Time-varying behaviour (Markov phase model) ==\n");
    let mut table = Table::new(vec!["behaviour", "sim duration (s)", "resp/byte (µs/B)"]);
    for (label, phases) in [
        ("stationary (paper)", None),
        (
            "I/O-bound ⇄ CPU-bound",
            Some(PhaseModel::io_cpu(0.2, 10.0, 0.95)?),
        ),
    ] {
        let mut user = presets::heavy_user();
        if let Some(p) = phases {
            user = user.with_phases(p);
        }
        let spec = base.clone().with_population(PopulationSpec::single(user)?);
        let report = spec.run_des(&ModelConfig::default_nfs())?;
        table.row(vec![
            label.to_string(),
            format!("{:.2}", report.duration.as_secs_f64()),
            format!("{:.3}", metrics::response_time_per_byte(&report.log)),
        ]);
    }
    println!("{}", table.render());

    // 3. Diurnal inter-login times ([CS85]).
    println!("== 3. Diurnal inter-login times ==\n");
    let user = presets::heavy_user()
        .with_inter_session_time(DistributionSpec::exponential(120_000_000.0)) // ~2 min
        .with_diurnal(DiurnalProfile::university_lab());
    let spec = base.clone().with_population(PopulationSpec::single(user)?);
    let report = spec.run_des(&ModelConfig::default_nfs())?;
    let mut gaps: Vec<f64> = report
        .log
        .sessions()
        .windows(2)
        .filter(|w| w[0].user == w[1].user)
        .map(|w| (w[1].start - w[0].end) as f64 / 1e6)
        .collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!(
        "inter-login gaps over the simulated day: min {:.0} s, median {:.0} s, max {:.0} s\n\
         (the university-lab profile stretches night-time gaps ~6-10×)\n",
        gaps.first().copied().unwrap_or(0.0),
        gaps.get(gaps.len() / 2).copied().unwrap_or(0.0),
        gaps.last().copied().unwrap_or(0.0),
    );

    // 4. Distributed NFS: scale out the server side.
    println!("== 4. Distributed NFS (Section 4.2 extension) ==\n");
    let heavy = base
        .clone()
        .with_population(PopulationSpec::single(presets::extremely_heavy_user())?);
    let mut table = Table::new(vec!["servers", "6-user resp/byte (µs/B)"]);
    for servers in [1usize, 2, 4] {
        let points = user_sweep(&heavy, &ModelConfig::distributed_nfs(servers), [6])?;
        table.row(vec![
            servers.to_string(),
            format!("{:.3}", points[0].response_per_byte),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}
