//! The GDS workflow: fit phase-type exponential and multi-stage gamma
//! mixtures to empirical data, test the fits, and display the densities —
//! the text-mode equivalent of the paper's interactive X11 session,
//! including the Figure 5.1/5.2 example families.
//!
//! ```sh
//! cargo run -p uswg-examples --bin fit_distributions
//! ```

use rand::SeedableRng;
use uswg_core::{fit, gof, plot, presets, CdfTable, Distribution, PhaseTypeExp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 5.1: phase-type exponential examples ==\n");
    for (label, dist) in presets::figure_5_1_examples()? {
        println!("{label}");
        println!("{}", plot::plot_pdf(&dist, 0.0, 100.0, 64, 10));
    }

    println!("== Figure 5.2: multi-stage gamma examples ==\n");
    for (label, dist) in presets::figure_5_2_examples()? {
        println!("{label}");
        println!("{}", plot::plot_pdf(&dist, 0.0, 100.0, 64, 10));
    }

    // Fit a two-phase mixture to data drawn from a bimodal "truth".
    println!("== Fitting a phase-type mixture to empirical data ==\n");
    let truth = PhaseTypeExp::new(vec![(0.6, 900.0, 0.0), (0.4, 1_500.0, 6_000.0)])?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1991);
    let data: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();

    let single = fit::fit_exponential(&data)?;
    let double = fit::fit_phase_type(&data, 2)?;
    let gamma = fit::fit_multi_stage_gamma(&data, 2)?;

    for (name, dist) in [
        ("single exponential", &single as &dyn Distribution),
        ("2-phase exponential", &double as &dyn Distribution),
        ("2-stage gamma", &gamma as &dyn Distribution),
    ] {
        let ks = gof::ks_statistic(&data, dist)?;
        let chi = gof::chi_square(&data, dist, 40)?;
        println!(
            "{name:<22} mean {:>8.1}  KS D = {:.4} (p = {:.3})  χ² = {:>8.1} ({} dof)",
            dist.mean(),
            ks.statistic,
            ks.p_value,
            chi.statistic,
            chi.degrees_of_freedom
        );
    }
    println!("\nfitted 2-phase density vs truth:");
    println!("{}", plot::plot_pdf(&double, 0.0, 12_000.0, 64, 10));

    // The GDS output artifact: CDF tables for the USIM.
    let table = CdfTable::from_distribution(&double, 1024)?;
    println!(
        "compiled CDF table: {} points, {} bytes (the Section 4.2 memory cost)",
        table.len(),
        table.memory_bytes()
    );
    Ok(())
}
