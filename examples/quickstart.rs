//! Quickstart: generate the paper's default workload, run it against the
//! NFS model, and print the response-time summary.
//!
//! ```sh
//! cargo run -p uswg-examples --bin quickstart
//! ```

use uswg_core::experiment::ModelConfig;
use uswg_core::{metrics, Table, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The workload of Section 5.1: Table 5.1 file system, Table 5.2 usage,
    // "heavy I/O" users (think time 5 000 µs), access size exp(1024 B).
    let mut spec = WorkloadSpec::paper_default()?;
    spec.run.n_users = 2;
    spec.run.sessions_per_user = 10;

    println!("== uswg quickstart ==");
    println!(
        "file system: {} categories, {} files/user + {} shared",
        spec.fsc.categories.len(),
        spec.fsc.files_per_user,
        spec.fsc.shared_files
    );
    println!(
        "population : {} ({} users × {} sessions)\n",
        spec.population.types()[0].0.name,
        spec.run.n_users,
        spec.run.sessions_per_user
    );

    // Run in simulated time against the NFS-like model.
    let report = spec.run_des(&ModelConfig::default_nfs())?;
    println!(
        "simulated {} events over {} of virtual time\n",
        report.events, report.duration
    );

    // Per-system-call summary, the Table 5.3 presentation.
    let mut table = Table::new(vec![
        "system call",
        "count",
        "access size (B)",
        "response (µs)",
    ])
    .with_title("Per-system-call summary (mean(std) as in Table 5.3)");
    for row in metrics::op_kind_summaries(&report.log) {
        table.row(vec![
            row.kind.to_string(),
            row.count.to_string(),
            row.access_size.mean_std(),
            row.response.mean_std(),
        ]);
    }
    println!("{}", table.render());

    println!(
        "mean response time per byte: {:.3} µs/B",
        metrics::response_time_per_byte(&report.log)
    );
    for (name, stats) in &report.resources {
        println!(
            "  {name:<16} {:>8} jobs, mean wait {:>8.1} µs, utilization {:>5.1}%",
            stats.jobs,
            stats.mean_wait(),
            100.0 * stats.utilization(report.duration, 1)
        );
    }
    Ok(())
}
