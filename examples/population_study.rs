//! The Section 5.1 usage study: simulate 600 login sessions and display the
//! system-wide usage distributions of Figures 5.3–5.5, before and after
//! smoothing.
//!
//! ```sh
//! cargo run --release -p uswg-examples --bin population_study
//! ```

use uswg_core::metrics::{session_series, SessionMetric};
use uswg_core::{plot, FillPattern, Histogram, Summary, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = WorkloadSpec::paper_default()?;
    // 600 login sessions, as in the paper's Figures 5.3–5.5 run.
    spec.run.n_users = 6;
    spec.run.sessions_per_user = 100;
    spec.run.record_ops = false; // sessions are all this study needs
    spec.fsc = spec.fsc.with_fill(FillPattern::Sparse); // large population, no data blocks

    println!("== Simulating 600 login sessions (Figures 5.3-5.5) ==\n");
    let log = spec.run_direct()?;
    assert_eq!(log.sessions().len(), 600);

    let figures = [
        (
            "Figure 5.3: average access-per-byte",
            SessionMetric::AccessPerByte,
            (0.0, 8.0),
        ),
        (
            "Figure 5.4: average file size (bytes)",
            SessionMetric::MeanFileSize,
            (0.0, 60_000.0),
        ),
        (
            "Figure 5.5: number of files referenced",
            SessionMetric::FilesReferenced,
            (0.0, 100.0),
        ),
    ];

    for (title, metric, (lo, hi)) in figures {
        let series = session_series(&log, metric);
        let summary = Summary::of(&series);
        println!(
            "{title}\n  n = {}, mean = {:.2}, std = {:.2}, p95 = {:.2}",
            summary.n,
            summary.mean,
            summary.std_dev,
            Summary::quantile(&series, 0.95)
        );
        let hist = Histogram::new(&series, lo, hi, 24);
        println!("\n(a) before smoothing");
        println!("{}", plot::plot_histogram(&hist.bins(), 48));
        println!("(b) after smoothing (moving average, window 1)");
        println!("{}", plot::plot_histogram(&hist.smoothed(1).bins(), 48));
    }
    Ok(())
}
