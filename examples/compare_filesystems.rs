//! The Section 5.3 procedure: compare candidate file systems under the
//! *same* user-oriented workload.
//!
//! "To compare two or more different file systems, we need to do a similar
//! measurement for each file system and compare the results by different
//! workload environments. One file system may be better under some
//! particular environment, and others may be superior under different
//! environments."
//!
//! ```sh
//! cargo run --release -p uswg-examples --bin compare_filesystems
//! ```

use uswg_core::experiment::{compare_models, ModelConfig};
use uswg_core::{presets, PopulationSpec, Table, UserTypeSpec, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut base = WorkloadSpec::paper_default()?;
    base.run.n_users = 3;
    base.run.sessions_per_user = 6;
    base.fsc = base.fsc.with_files_per_user(20)?.with_shared_files(40)?;

    let candidates = [
        ModelConfig::default_local(),
        ModelConfig::default_nfs(),
        ModelConfig::default_whole_file(),
    ];

    println!("== Comparing file systems under the same workload (Section 5.3) ==\n");

    // Environment 1: the paper's default usage (whole files re-read ~1-3x).
    let spec1 = base
        .clone()
        .with_population(PopulationSpec::single(presets::heavy_user())?);
    report(
        "Environment 1: Table 5.2 usage (moderate re-reading)",
        &spec1,
        &candidates,
    )?;

    // Environment 2: touch-a-little users — open big files, read a sliver.
    // Whole-file caching must pay to fetch entire files it barely uses.
    let mut sliver_categories = presets::table_5_2_usages();
    for usage in &mut sliver_categories {
        usage.access_per_byte = 0.05;
    }
    let sliver = UserTypeSpec::new(
        "sliver reader",
        uswg_core::DistributionSpec::exponential(presets::THINK_HEAVY),
        uswg_core::DistributionSpec::exponential(presets::ACCESS_SIZE_MEAN),
        sliver_categories,
    );
    let spec2 = base
        .clone()
        .with_population(PopulationSpec::single(sliver)?);
    report(
        "Environment 2: sliver readers (0.05 accesses per byte)",
        &spec2,
        &candidates,
    )?;

    // Environment 3: re-readers — every byte accessed many times.
    // Whole-file caching amortizes its fetch; NFS pays the wire every time.
    let mut rereader_categories = presets::table_5_2_usages();
    for usage in &mut rereader_categories {
        usage.access_per_byte = 8.0;
    }
    let rereader = UserTypeSpec::new(
        "re-reader",
        uswg_core::DistributionSpec::exponential(presets::THINK_HEAVY),
        uswg_core::DistributionSpec::exponential(presets::ACCESS_SIZE_MEAN),
        rereader_categories,
    );
    let spec3 = base
        .clone()
        .with_population(PopulationSpec::single(rereader)?);
    report(
        "Environment 3: re-readers (8 accesses per byte)",
        &spec3,
        &candidates,
    )?;

    println!(
        "No file system wins every environment: the local disk always leads,\n\
         but whole-file caching overtakes plain NFS once files are re-read\n\
         enough to amortize the open-time fetch — the paper's point that the\n\
         *workload environment* must pick the file system."
    );
    Ok(())
}

fn report(
    title: &str,
    spec: &WorkloadSpec,
    candidates: &[ModelConfig],
) -> Result<(), Box<dyn std::error::Error>> {
    let results = compare_models(spec, candidates)?;
    let mut table = Table::new(vec![
        "file system",
        "resp/byte (µs/B)",
        "response µs mean(std)",
    ])
    .with_title(title);
    for (name, point) in &results {
        table.row(vec![
            name.clone(),
            format!("{:.3}", point.response_per_byte),
            point.response.mean_std(),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}
