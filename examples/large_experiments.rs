//! Tour of the memory-flat experiment machinery: summary-mode sweeps,
//! work-stolen replication studies with pooled statistics, and
//! spill-to-disk full-fidelity runs.
//!
//! ```sh
//! cargo run --release --example large_experiments
//! ```

use uswg_core::experiment::{
    run_des_replicated, user_sweep_with, ModelConfig, Parallelism, SweepMode,
};
use uswg_core::{read_spill, SpillSink, SummarySink, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut spec = WorkloadSpec::paper_default()?;
    spec.run.sessions_per_user = 4;
    spec.fsc = spec.fsc.with_files_per_user(20)?.with_shared_files(40)?;
    let model = ModelConfig::default_nfs();

    // 1. A summary-mode sweep: every point streams into running aggregates
    //    and retains O(1) bytes — the mode that scales to the million-user
    //    populations the full log cannot hold. Points fan out over the
    //    work-stealing pool; schedules are byte-identical to serial.
    println!("== summary-mode user sweep (O(1) memory per point) ==");
    let points = user_sweep_with(
        &spec,
        &model,
        [1, 2, 4, 8],
        Parallelism::Auto,
        SweepMode::Summary,
    )?;
    for p in &points {
        println!(
            "  {:>3} users: {:.3} µs/B over {} data ops ({} sessions)",
            p.x, p.response_per_byte, p.response.n, p.sessions
        );
    }
    println!(
        "  (each point retained {} bytes instead of a full usage log)",
        std::mem::size_of::<SummarySink>()
    );

    // 2. A replication study: the same workload under independent seeds,
    //    fanned across cores, with per-seed spread plus statistics pooled
    //    by merging the streaming sinks in seed order.
    println!("\n== replication study (pooled via SummarySink::merge) ==");
    let study = run_des_replicated(
        &spec,
        &model,
        spec.run.seed..spec.run.seed + 5,
        Parallelism::Auto,
        SweepMode::Summary,
    )?;
    println!(
        "  mean response/byte {:.3} ± {:.3} µs/B (95% CI half-width {:.3}, {} seeds)",
        study.mean_response_per_byte,
        study.std_dev_response_per_byte,
        study.ci95_half_width,
        study.replicates.len()
    );
    println!(
        "  pooled response over {} data ops: {:.1} ± {:.1} µs",
        study.pooled_response.n, study.pooled_response.mean, study.pooled_response.std_dev
    );

    // 3. Full fidelity beyond RAM: stream every record to a columnar spill
    //    (here a byte buffer standing in for a file; `SpillSink::create`
    //    writes the same frames to disk) and reconstruct the exact log.
    println!("\n== spill-to-disk full-fidelity run ==");
    let sink = SpillSink::new(Vec::new())?;
    let (sink, stats) = spec.run_des_with_sink(&model, sink)?;
    let bytes = sink.finish()?;
    println!(
        "  {} events simulated; spill stream is {} bytes",
        stats.events,
        bytes.len()
    );
    let log = read_spill(bytes.as_slice())?;
    println!(
        "  reconstructed {} ops and {} sessions losslessly from the spill",
        log.ops().len(),
        log.sessions().len()
    );
    Ok(())
}
