//! The Section 5.2 study: measure an NFS-like file system's response time
//! as the number of concurrent users and the user mix vary.
//!
//! Reproduces the shapes of Figures 5.6–5.11 at example scale (fewer
//! sessions than the paper's 50 per point; the benches run the full size).
//!
//! ```sh
//! cargo run --release -p uswg-examples --bin nfs_measurement
//! ```

use uswg_core::experiment::{user_sweep, ModelConfig};
use uswg_core::{presets, PopulationSpec, Table, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut base = WorkloadSpec::paper_default()?;
    base.run.sessions_per_user = 5;
    base.fsc = base.fsc.with_files_per_user(25)?.with_shared_files(60)?;

    let populations: Vec<(&str, PopulationSpec)> = vec![
        (
            "100% extremely heavy (Fig 5.6)",
            PopulationSpec::single(presets::extremely_heavy_user())?,
        ),
        (
            "100% heavy (Fig 5.7)",
            presets::heavy_light_population(1.0)?,
        ),
        (
            "80% heavy / 20% light (Fig 5.8)",
            presets::heavy_light_population(0.8)?,
        ),
        (
            "50% heavy / 50% light (Fig 5.9)",
            presets::heavy_light_population(0.5)?,
        ),
        (
            "20% heavy / 80% light (Fig 5.10)",
            presets::heavy_light_population(0.2)?,
        ),
        (
            "100% light (Fig 5.11)",
            presets::heavy_light_population(0.0)?,
        ),
    ];

    println!("== Measuring the simulated SUN NFS (Section 5.2) ==\n");
    for (label, population) in populations {
        let spec = base.clone().with_population(population);
        let points = user_sweep(&spec, &ModelConfig::default_nfs(), 1..=6)?;
        let mut table = Table::new(vec!["users", "resp/byte (µs/B)", "response µs mean(std)"])
            .with_title(label);
        for p in &points {
            table.row(vec![
                format!("{}", p.x as usize),
                format!("{:.3}", p.response_per_byte),
                p.response.mean_std(),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "The 100%-extremely-heavy curve grows steeply and near-linearly in the\n\
         number of users (all users compete all the time); curves with think\n\
         time are much flatter, and the 5 000 µs vs 20 000 µs curves are close,\n\
         as the paper observes."
    );
    Ok(())
}
